"""Open-loop HTTP load generation against the query gateway.

A **closed-loop** client (issue, wait, issue again) self-throttles when
the server slows down — offered load silently drops exactly when the
system saturates, and the latency curve flatters the server.  This
generator is **open-loop**: request *i* launches at ``start + i/rate``
whether or not earlier requests have finished, the way independent
clients arrive in production.  Past the saturation knee, latency grows
without bound instead of plateauing — which is the honest curve.

Per request it records the full streaming timeline:

* ``latency`` — request start → response fully read,
* ``first_byte`` — request start → first response byte,
* ``first_row`` — request start → first NDJSON ``rows`` event
  (streamed requests only; equals full latency for materialized ones).

The client is a minimal asyncio HTTP/1.1 implementation
(``Connection: close``, one connection per request — an open-loop
arrival *is* a new client), enough for the gateway's JSON and
chunked-NDJSON responses; this repo takes no dependencies.

Usage::

    report = run_load(url, xpath="/bib/book", rate=200, duration=2.0)
    print(report.to_dict())

or over a rate sweep::

    reports = [run_load(url, ..., rate=r, duration=2) for r in RATES]
    knee = saturation_knee(reports)
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.parse
from dataclasses import dataclass, field

__all__ = [
    "LoadReport",
    "Sample",
    "percentile",
    "run_load",
    "saturation_knee",
]


@dataclass(frozen=True)
class Sample:
    """One request's timeline, all seconds relative to its start."""

    status: int
    latency: float
    first_byte: float | None = None
    first_row: float | None = None
    error: str | None = None
    #: How late the request launched vs its open-loop schedule — a
    #: generator that cannot keep its own schedule (coordinated
    #: omission) invalidates the run; reports surface the worst case.
    schedule_slip: float = 0.0
    rows: int = 0


def percentile(values: list[float], q: float) -> float | None:
    """The *q*-quantile (0..1) by linear interpolation; None when empty."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    low = int(pos)
    high = min(low + 1, len(ordered) - 1)
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass
class LoadReport:
    """One load point: offered rate in, latency distribution out."""

    offered_rate: float
    duration_seconds: float
    #: The open-loop arrival window — first launch through the end of
    #: the schedule.  ``duration_seconds`` additionally includes the
    #: completion drain after the last arrival; measuring achieved rate
    #: over the drain would let one slow straggler deflate it.  0 means
    #: "unknown" (hand-built reports) and falls back to duration.
    arrival_seconds: float = 0.0
    samples: list[Sample] = field(default_factory=list)

    @property
    def completed(self) -> list[Sample]:
        return [s for s in self.samples if s.error is None]

    def statuses(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for sample in self.samples:
            counts[sample.status] = counts.get(sample.status, 0) + 1
        return counts

    def _quantiles(self, values: list[float]) -> dict:
        return {
            "p50": percentile(values, 0.50),
            "p90": percentile(values, 0.90),
            "p99": percentile(values, 0.99),
            "max": max(values) if values else None,
        }

    def to_dict(self) -> dict:
        ok = [s for s in self.completed if s.status in (200, 206)]
        latencies = [s.latency for s in ok]
        first_bytes = [
            s.first_byte for s in ok if s.first_byte is not None
        ]
        first_rows = [
            s.first_row for s in ok if s.first_row is not None
        ]
        window = self.arrival_seconds or self.duration_seconds
        achieved = (
            len(self.completed) / window if window > 0 else 0.0
        )
        return {
            "offered_rate": self.offered_rate,
            "achieved_rate": achieved,
            "duration_seconds": self.duration_seconds,
            "arrival_seconds": window,
            "drain_seconds": max(
                0.0, self.duration_seconds - window
            ),
            "requests": len(self.samples),
            "ok": len(ok),
            "statuses": {
                str(status): count
                for status, count in sorted(self.statuses().items())
            },
            "errors": sum(1 for s in self.samples if s.error is not None),
            "latency_seconds": self._quantiles(latencies),
            "first_byte_seconds": self._quantiles(first_bytes),
            "first_row_seconds": self._quantiles(first_rows),
            "max_schedule_slip_seconds": max(
                (s.schedule_slip for s in self.samples), default=0.0
            ),
        }


async def _fetch(
    host: str,
    port: int,
    path: str,
    body: bytes | None,
    client: str,
    timeout: float,
) -> Sample:
    """One request on one fresh connection, timeline recorded."""
    started = time.perf_counter()
    first_byte = first_row = None
    rows = 0
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
    except (OSError, asyncio.TimeoutError, TimeoutError) as error:
        return Sample(
            status=0,
            latency=time.perf_counter() - started,
            error=f"connect: {type(error).__name__}",
        )
    try:
        method = "POST" if body is not None else "GET"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"X-Client-Id: {client}\r\n"
            "Connection: close\r\n"
        )
        if body is not None:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
        writer.write(head.encode() + b"\r\n" + (body or b""))
        await writer.drain()

        status_line = await asyncio.wait_for(
            reader.readline(), timeout=timeout
        )
        first_byte = time.perf_counter() - started
        parts = status_line.decode("latin-1").split()
        status = int(parts[1]) if len(parts) > 1 else 0
        streaming = False
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if (
                name.strip().lower() == "content-type"
                and "ndjson" in value
            ):
                streaming = True
        # Remaining bytes: chunked NDJSON or a Content-Length JSON
        # body; Connection: close makes read-to-EOF correct for both.
        payload = await asyncio.wait_for(reader.read(), timeout=timeout)
        latency = time.perf_counter() - started
        if streaming:
            for raw_line in payload.splitlines():
                # Skip chunked framing: chunk-size lines are short hex
                # tokens, events are JSON objects starting with '{'.
                if not raw_line.startswith(b"{"):
                    continue
                event = json.loads(raw_line)
                if event.get("event") == "rows":
                    if first_row is None:
                        first_row = first_byte
                    rows += len(event.get("rows", ()))
                if event.get("event") == "error":
                    status = int(event.get("status", status) or status)
        elif status in (200, 206) and payload:
            json_start = payload.find(b"{")
            if json_start >= 0:
                parsed = json.loads(payload[json_start:])
                rows = parsed.get("row_count", 0)
                first_row = latency
        return Sample(
            status=status,
            latency=latency,
            first_byte=first_byte,
            first_row=first_row,
            rows=rows,
        )
    except (OSError, asyncio.TimeoutError, TimeoutError,
            ValueError) as error:
        return Sample(
            status=0,
            latency=time.perf_counter() - started,
            first_byte=first_byte,
            error=f"{type(error).__name__}: {error}",
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _fetch_streamed(
    host: str, port: int, path: str, body, client, timeout,
) -> Sample:
    """Like :func:`_fetch` but reads the chunked stream line by line so
    ``first_row`` is a *measured* arrival time, not an approximation."""
    started = time.perf_counter()
    first_byte = first_row = None
    rows = 0
    status = 0
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
    except (OSError, asyncio.TimeoutError, TimeoutError) as error:
        return Sample(
            status=0,
            latency=time.perf_counter() - started,
            error=f"connect: {type(error).__name__}",
        )
    try:
        method = "POST" if body is not None else "GET"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"X-Client-Id: {client}\r\n"
            "Connection: close\r\n"
        )
        if body is not None:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
        writer.write(head.encode() + b"\r\n" + (body or b""))
        await writer.drain()
        status_line = await asyncio.wait_for(
            reader.readline(), timeout=timeout
        )
        first_byte = time.perf_counter() - started
        parts = status_line.decode("latin-1").split()
        status = int(parts[1]) if len(parts) > 1 else 0
        while True:  # headers
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        while True:  # chunked NDJSON events, one read per line
            line = await asyncio.wait_for(
                reader.readline(), timeout=timeout
            )
            if not line:
                break
            if not line.startswith(b"{"):
                continue  # chunk framing
            event = json.loads(line)
            kind = event.get("event")
            if kind == "rows":
                if first_row is None:
                    first_row = time.perf_counter() - started
                rows += len(event.get("rows", ()))
            elif kind == "error":
                status = int(event.get("status", status) or status)
            elif kind == "end":
                if event.get("outcome") == "partial":
                    status = 206
                break
        return Sample(
            status=status,
            latency=time.perf_counter() - started,
            first_byte=first_byte,
            first_row=first_row,
            rows=rows,
        )
    except (OSError, asyncio.TimeoutError, TimeoutError,
            ValueError) as error:
        return Sample(
            status=status,
            latency=time.perf_counter() - started,
            first_byte=first_byte,
            error=f"{type(error).__name__}: {error}",
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _open_loop(
    url: str,
    xpath: str,
    rate: float,
    duration: float,
    stream: bool,
    client: str,
    timeout: float,
    doc_id: int | None,
    deadline_seconds: float | None,
) -> LoadReport:
    split = urllib.parse.urlsplit(url)
    host, port = split.hostname or "127.0.0.1", split.port or 80
    payload: dict = {"xpath": xpath}
    if stream:
        payload["stream"] = True
    if doc_id is not None:
        payload["doc_id"] = doc_id
    if deadline_seconds is not None:
        payload["deadline_seconds"] = deadline_seconds
    body = json.dumps(payload).encode()
    fetch = _fetch_streamed if stream else _fetch
    total = max(1, int(rate * duration))
    interval = 1.0 / rate
    start = time.perf_counter()
    tasks = []
    slips = []
    for i in range(total):
        target = start + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        # Launch regardless of in-flight count: open loop.
        slips.append(max(0.0, time.perf_counter() - target))
        tasks.append(
            asyncio.ensure_future(
                fetch(host, port, "/query", body, client, timeout)
            )
        )
    # The arrival window closes with the schedule (stretched if the
    # launch loop slipped), not with the slowest completion — the
    # gather() below drains in-flight tails and must not count against
    # achieved rate.
    arrival = max(total * interval, time.perf_counter() - start)
    samples = list(await asyncio.gather(*tasks))
    elapsed = time.perf_counter() - start
    report = LoadReport(
        offered_rate=rate,
        duration_seconds=elapsed,
        arrival_seconds=arrival,
        samples=[
            Sample(
                status=s.status,
                latency=s.latency,
                first_byte=s.first_byte,
                first_row=s.first_row,
                error=s.error,
                schedule_slip=slip,
                rows=s.rows,
            )
            for s, slip in zip(samples, slips)
        ],
    )
    return report


def run_load(
    url: str,
    xpath: str,
    rate: float,
    duration: float,
    stream: bool = False,
    client: str = "loadgen",
    timeout: float = 30.0,
    doc_id: int | None = None,
    deadline_seconds: float | None = None,
) -> LoadReport:
    """Drive *url* at *rate* requests/second for *duration* seconds,
    open-loop, and return the :class:`LoadReport`.

    Synchronous wrapper — runs its own event loop on the calling thread
    (or a private thread when one is already running, so tests inside
    async frameworks still work).
    """

    async def main():
        return await _open_loop(
            url, xpath, rate, duration, stream, client, timeout,
            doc_id, deadline_seconds,
        )

    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(main())
    # Called from inside a running loop: spill to a worker thread.
    box: list = []

    def runner():
        box.append(asyncio.run(main()))

    thread = threading.Thread(
        target=runner, name="xmlrel-loadgen", daemon=True
    )
    thread.start()
    thread.join()
    return box[0]


def saturation_knee(reports: list[LoadReport]) -> dict | None:
    """Locate the saturation knee in a rate sweep.

    The knee is the first offered rate where the server visibly stops
    keeping up: achieved throughput falls >10% short of offered, p99
    latency exceeds 3x the lowest-rate baseline, or rejections (429) /
    errors appear in bulk (>5% of requests).  Returns ``{"offered_rate",
    "reason"}`` or None when the sweep never saturates.
    """
    if not reports:
        return None
    ordered = sorted(reports, key=lambda r: r.offered_rate)
    baseline = ordered[0].to_dict()["latency_seconds"]["p99"]
    for report in ordered:
        summary = report.to_dict()
        reasons = []
        if summary["requests"]:
            rejected = sum(
                count
                for status, count in summary["statuses"].items()
                if status in ("429", "503", "504", "0")
            )
            if rejected / summary["requests"] > 0.05:
                reasons.append(
                    f"{rejected}/{summary['requests']} shed or failed"
                )
        p99 = summary["latency_seconds"]["p99"]
        if (
            baseline is not None and p99 is not None
            and baseline > 0 and p99 > 3 * baseline
        ):
            reasons.append(
                f"p99 {p99 * 1e3:.1f}ms > 3x baseline "
                f"{baseline * 1e3:.1f}ms"
            )
        if summary["achieved_rate"] < 0.9 * report.offered_rate:
            reasons.append(
                f"achieved {summary['achieved_rate']:.0f}/s < 90% of "
                f"offered {report.offered_rate:.0f}/s"
            )
        if reasons:
            return {
                "offered_rate": report.offered_rate,
                "reason": "; ".join(reasons),
            }
    return None
