"""Measurement primitives and result records for the experiment suite.

Each benchmark module builds :class:`Row` objects (one per table row or
figure series point) into an :class:`ExperimentResult` and hands it to
:func:`repro.bench.report.write_report`, which renders the paper-style
table under ``benchmarks/results/``.  Wall-clock timing for the
latency-style experiments additionally goes through pytest-benchmark so
``bench_output.txt`` carries calibrated numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Row:
    """One table row / figure point: a label plus named measurements."""

    label: str
    values: dict[str, object] = field(default_factory=dict)

    def set(self, column: str, value: object) -> "Row":
        self.values[column] = value
        return self


@dataclass
class ExperimentResult:
    """All rows of one experiment, plus its header metadata."""

    experiment: str
    title: str
    workload: str
    expectation: str
    columns: list[str] = field(default_factory=list)
    rows: list[Row] = field(default_factory=list)

    def add_row(self, label: str, **values: object) -> Row:
        row = Row(label, dict(values))
        self.rows.append(row)
        return row

    def all_columns(self) -> list[str]:
        """Declared columns plus any set later via ``Row.set``, in
        first-appearance order."""
        columns = list(self.columns)
        for row in self.rows:
            for column in row.values:
                if column not in columns:
                    columns.append(column)
        return columns

    def column_values(self, column: str) -> list[object]:
        return [row.values.get(column) for row in self.rows]


def time_call(callable_, repetitions: int = 3) -> float:
    """Best-of-N wall-clock seconds of ``callable_()``."""
    best = float("inf")
    for __ in range(repetitions):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best


def format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    if value is None:
        return "—"
    return str(value)
