"""``xmlrel-concurrency`` — the static lock-discipline analyzer.

The serving stack's thread-safety rests on a handful of conventions:
one declared lock order, per-shard single-writer locks, and "never
block while holding a small lock".  Until this module those conventions
lived in prose comments; this analyzer turns them into a machine-checked
gate (run as ``python -m repro.analysis.concurrency``).

The canonical lock order
------------------------

:data:`LOCK_ORDER` is the single source of truth for lock ranking —
every prose "Lock order:" comment in the tree refers here.  Locks are
grouped into *classes*; a thread may only acquire a lock of **equal or
higher rank** than every lock it already holds:

``shard`` (rank 0, outermost)
    The per-shard single-writer locks
    (:class:`~repro.serve.sharded.ShardedStore` ``_shard_locks``).
    Multiple shard locks are taken in ascending shard-index order
    (``rebalance`` sorts its pair; ``recover`` ascends).  Coarse by
    design: whole write transactions run under them, so blocking on
    SQL or a connection acquire underneath is expected.
``map`` (rank 1)
    The catalog/shard-map locks — ``ShardedStore._map_lock`` plus the
    in-memory mirrors in :mod:`repro.relational.shardmap`.  Guards
    every catalog-database write, so SQL underneath is part of the
    contract; anything else blocking is not.
``pool`` (rank 2)
    Connection-pool and plan-cache bookkeeping locks.  Held for a few
    counter updates only — nothing may block under them.
``metrics`` (rank 3, innermost)
    Observability locks (metrics registry, windows, tracer, request
    log, fault policy).  Innermost so any code, even code already
    holding every other lock, can record telemetry.

:data:`LOCK_SITES` maps the modules allowed to *construct* locks to the
attributes they own and their classes; ``xmlrel-lint`` rule L005 keeps
the map complete by refusing raw ``threading.Lock()`` construction in
unlisted modules.

Rule catalog
------------

C001 (error)
    Lock-order inversion: acquiring a lock ranked *lower* than one
    already held, directly or through a same-class method call chain.
C002 (error)
    Blocking call under a lock whose class does not allow that kind of
    blocking: queue ``get``/``put`` without a timeout, a pool or
    connection acquire, ``execute*``/``transaction``, ``time.sleep``
    (and retry backoff), or a thread ``join``.
C003 (warning)
    An attribute written with no lock held, while the same attribute is
    accessed under a lock elsewhere in the class — the usual shape of a
    forgotten guard.
C004 (warning)
    ``threading.Thread(...)`` without explicit ``name=`` and ``daemon=``
    keywords — anonymous threads make production hangs undebuggable.
C005 (error)
    Double-acquire of a non-reentrant lock along any static same-class
    call path — a guaranteed self-deadlock.

False positives are suppressed in place with ``# lint: allow(C00x)`` on
the offending line or on a comment line directly above it.  The CI gate
runs ``--strict``, which fails on any unsuppressed finding regardless
of severity; without ``--strict`` only error-severity findings fail.

What the analyzer can and cannot see
------------------------------------

The model is per-class and syntactic: it tracks ``self.<attr>`` locks
through ``with`` blocks, explicit ``acquire()``/``release()`` pairs
(including loops over lock lists), and same-class ``self.method()``
call chains.  Calls that cross object boundaries (``self.pool.foo()``)
are opaque — the runtime harness in
:mod:`repro.analysis.lockharness` covers those by watching real
acquisitions under the test suites.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    collect_pragmas,
    format_diagnostics,
    has_errors,
    is_suppressed,
)


@dataclass(frozen=True)
class LockClass:
    """One rank in the canonical lock order.

    ``blocking_ok`` lists the :ref:`blocking kinds <C002>` permitted
    while a lock of this class is held (e.g. the shard locks serialize
    whole write transactions, so SQL underneath is the design, not a
    bug).
    """

    name: str
    rank: int
    blocking_ok: tuple[str, ...] = ()


#: The canonical lock order: outermost first.  Acquire left-to-right
#: only.  Referenced by every "Lock order:" comment in the tree.
LOCK_ORDER: tuple[LockClass, ...] = (
    LockClass("shard", 0, blocking_ok=("execute", "acquire")),
    LockClass("map", 1, blocking_ok=("execute",)),
    LockClass("pool", 2),
    LockClass("metrics", 3),
)

LOCK_CLASSES: dict[str, LockClass] = {c.name: c for c in LOCK_ORDER}

#: Modules allowed to construct locks (``xmlrel-lint`` L005), mapped to
#: ``{attribute name: lock class}`` — the whole-tree lock model.  Paths
#: are ``/``-separated suffixes relative to the package root, like
#: :data:`repro.analysis.lint.SQL_ALLOWED`.
LOCK_SITES: dict[str, dict[str, str]] = {
    "repro/serve/sharded.py": {"_shard_locks": "shard", "_map_lock": "map"},
    "repro/serve/pool.py": {"_lock": "pool"},
    "repro/serve/executor.py": {"_replica_lock": "pool", "_gate": "pool"},
    "repro/serve/gateway.py": {"_lock": "pool"},
    "repro/relational/plancache.py": {"_lock": "pool"},
    "repro/relational/shardmap.py": {"_lock": "map"},
    "repro/obs/metrics.py": {"_lock": "metrics"},
    "repro/obs/window.py": {"_lock": "metrics"},
    "repro/obs/trace.py": {"_lock": "metrics"},
    "repro/obs/events.py": {"_lock": "metrics", "_drained": "metrics"},
    "repro/reliability/faults.py": {"_lock": "metrics"},
}

#: Lock-constructor names -> model kind.  ``rlock`` is reentrant (no
#: C005); ``semaphore`` is a counted capacity gate, not a critical
#: section, so holding one never triggers C001/C002/C005.
_LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
    "Condition": "condition",
}

_QUEUE_CTORS = frozenset(
    {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"}
)

#: Method names that count as SQL execution for C002.
_EXECUTE_NAMES = frozenset(
    {"query", "query_one", "commit", "transaction", "executemany",
     "executescript"}
)

#: Receivers whose ``get``/``put`` look like queue waits (C002).
_QUEUE_HINT = re.compile(r"queue|_idle|_pending", re.IGNORECASE)

#: Receivers whose argument-less ``join`` looks like a thread join.
_THREAD_HINT = re.compile(r"thread|worker|writer", re.IGNORECASE)

_INIT_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__init_subclass__"}
)

_MUTEX_KINDS = frozenset({"lock", "rlock", "condition"})


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def sites_for(rel_path: str, sites: dict[str, dict[str, str]]) -> dict:
    """The registered ``{attr: lock class}`` map for one file path
    (suffix-matched, like the lint allow-lists)."""
    for suffix, attrs in sites.items():
        if rel_path == suffix or rel_path.endswith("/" + suffix):
            return attrs
    return {}


def _terminal_name(node: ast.AST) -> str:
    """The last identifier of a dotted/subscripted expression —
    ``self.pools[shard]`` -> ``pools`` — used for receiver heuristics."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return ""


def _ctor_name(func: ast.AST) -> str:
    """``threading.Lock`` / bare ``Lock`` -> ``"Lock"`` (else "")."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _lock_ctor_kind(node: ast.AST) -> str | None:
    """The lock kind a value expression constructs, if any (handles
    list comprehensions of locks and dataclass ``default_factory``)."""
    if isinstance(node, ast.Call):
        name = _ctor_name(node.func)
        if name in _LOCK_CTORS:
            return _LOCK_CTORS[name]
        if name == "field":
            for kw in node.keywords:
                if kw.arg == "default_factory":
                    factory = _ctor_name(kw.value)
                    if factory in _LOCK_CTORS:
                        return _LOCK_CTORS[factory]
    if isinstance(node, ast.ListComp):
        inner = _lock_ctor_kind(node.elt)
        if inner:
            return inner + "_list"
    if isinstance(node, ast.List) and node.elts:
        kinds = [_lock_ctor_kind(elt) for elt in node.elts]
        if all(kinds):
            return kinds[0] + "_list"
    return None


def _queue_ctor(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call) and _ctor_name(node.func) in _QUEUE_CTORS
    )


@dataclass(frozen=True)
class LockInfo:
    """One lock attribute of one class, as the model sees it."""

    attr: str
    kind: str  # lock | rlock | semaphore | condition (+ "_list")
    lock_class: str | None  # registry class name (None: unregistered)
    rank: int | None
    line: int

    @property
    def base_kind(self) -> str:
        return self.kind.removesuffix("_list")


@dataclass(eq=False)
class _HeldTok:
    """A lock believed held at the current program point."""

    attr: str
    key: str  # subscript text, "" for scalars, "*" for loop-acquired
    rank: int | None
    lock_class: str | None
    kind: str
    line: int

    @property
    def label(self) -> str:
        return f"self.{self.attr}[{self.key}]" if self.key else f"self.{self.attr}"


@dataclass
class _MethodSummary:
    label: str
    acquires: list[tuple[str, str, str, int]] = field(default_factory=list)
    calls: list[tuple[str, tuple[_HeldTok, ...], int]] = field(
        default_factory=list
    )
    writes: list[tuple[str, int, bool]] = field(default_factory=list)
    guarded_access: set[str] = field(default_factory=set)


@dataclass
class _RawFinding:
    code: str
    severity: str
    message: str
    line: int


def _blocking_kind(
    call: ast.Call, queue_attrs: set[str]
) -> tuple[str, str] | None:
    """Classify *call* as a blocking kind for C002, or None.

    Kinds: ``queue`` (get/put without timeout), ``acquire`` (pool or
    connection checkout), ``execute`` (SQL), ``sleep``, ``join``.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    name = func.attr
    recv = _terminal_name(func.value)
    desc = ast.unparse(func)
    has_timeout = any(kw.arg == "timeout" for kw in call.keywords)
    if name == "sleep" and recv == "time":
        return "sleep", desc
    if name == "backoff":
        return "sleep", desc
    if name.startswith("execute") or name in _EXECUTE_NAMES:
        return "execute", desc
    looks_queue = bool(_QUEUE_HINT.search(recv)) or (
        isinstance(func.value, ast.Attribute)
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id == "self"
        and func.value.attr in queue_attrs
    )
    if looks_queue and not has_timeout:
        if name == "get" and not call.args:
            return "queue", desc
        if name == "put":
            return "queue", desc
    if name in ("acquire", "connection"):
        return "acquire", desc
    if (
        name == "join"
        and not call.args
        and not call.keywords
        and _THREAD_HINT.search(recv)
    ):
        return "join", desc
    return None


class _MethodWalker:
    """Walks one method body tracking the statically-held lock set."""

    def __init__(
        self,
        model: "_ClassAnalyzer",
        label: str,
    ) -> None:
        self.model = model
        self.summary = _MethodSummary(label)
        self.nested: list[tuple[str, ast.FunctionDef]] = []
        self._held: list[_HeldTok] = []
        self._loop_locks: dict[str, tuple[str, str]] = {}

    def walk(self, fn: ast.FunctionDef) -> _MethodSummary:
        self._block(fn.body)
        return self.summary

    # -- lock references ---------------------------------------------------------

    def _lock_ref(self, expr: ast.AST) -> tuple[str, str] | None:
        """``(attr, subscript key)`` when *expr* names a model lock."""
        locks = self.model.locks
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in locks
            and not locks[expr.attr].kind.endswith("_list")
        ):
            return expr.attr, ""
        if isinstance(expr, ast.Subscript):
            base = expr.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in locks
                and locks[base.attr].kind.endswith("_list")
            ):
                return base.attr, ast.unparse(expr.slice)
        if isinstance(expr, ast.Name) and expr.id in self._loop_locks:
            return self._loop_locks[expr.id]
        return None

    def _iter_lock_list(self, iter_expr: ast.AST) -> str | None:
        """The lock-list attr a ``for`` iterates, unwrapping
        ``reversed``/``sorted``/``enumerate``/``list``/``tuple``."""
        node = iter_expr
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("reversed", "sorted", "enumerate", "list",
                                 "tuple")
            and node.args
        ):
            node = node.args[0]
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.model.locks
            and self.model.locks[node.attr].kind.endswith("_list")
        ):
            return node.attr
        return None

    # -- acquisition bookkeeping --------------------------------------------------

    def _acquire(self, ref: tuple[str, str], line: int) -> _HeldTok | None:
        attr, key = ref
        info = self.model.locks[attr]
        if info.base_kind == "semaphore":
            self.summary.acquires.append((attr, key, info.base_kind, line))
            return None
        if info.base_kind != "rlock":
            for tok in self._held:
                if tok.attr == attr and tok.key == key:
                    self.model.add(
                        "C005",
                        SEVERITY_ERROR,
                        f"double acquire of non-reentrant lock "
                        f"{tok.label} (already held since line "
                        f"{tok.line}) — guaranteed self-deadlock",
                        line,
                    )
                    break
        ranked = [t for t in self._held if t.rank is not None]
        if info.rank is not None and ranked:
            worst = max(ranked, key=lambda t: t.rank)
            if info.rank < worst.rank:
                order = " -> ".join(c.name for c in self.model.order)
                self.model.add(
                    "C001",
                    SEVERITY_ERROR,
                    f"lock-order inversion: acquiring self.{attr} "
                    f"(class {info.lock_class!r}, rank {info.rank}) while "
                    f"holding {worst.label} (class {worst.lock_class!r}, "
                    f"rank {worst.rank}); declared order is {order}",
                    line,
                )
        token = _HeldTok(
            attr, key, info.rank, info.lock_class, info.base_kind, line
        )
        self._held.append(token)
        self.summary.acquires.append((attr, key, info.base_kind, line))
        return token

    def _release(self, ref: tuple[str, str]) -> None:
        attr, key = ref
        for tok in reversed(self._held):
            if tok.attr == attr and tok.key == key:
                self._held.remove(tok)
                return

    def _access(self, attr: str) -> None:
        if self._held:
            self.summary.guarded_access.add(attr)

    # -- statements ---------------------------------------------------------------

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed: list[_HeldTok] = []
            for item in stmt.items:
                ref = self._lock_ref(item.context_expr)
                if ref is not None:
                    token = self._acquire(ref, item.context_expr.lineno)
                    if token is not None:
                        pushed.append(token)
                else:
                    self._expr(item.context_expr)
            self._block(stmt.body)
            for token in pushed:
                if token in self._held:
                    self._held.remove(token)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter)
            bound: str | None = None
            lock_attr = self._iter_lock_list(stmt.iter)
            if lock_attr is not None:
                target = stmt.target
                if isinstance(target, ast.Tuple) and target.elts:
                    target = target.elts[-1]  # enumerate: (i, lock)
                if isinstance(target, ast.Name):
                    bound = target.id
                    self._loop_locks[bound] = (lock_attr, "*")
            self._block(stmt.body)
            self._block(stmt.orelse)
            if bound is not None:
                self._loop_locks.pop(bound, None)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested functions run on their own frame (often their own
            # thread) — analyzed as pseudo-methods with an empty held
            # set by the class driver.
            self.nested.append(
                (f"{self.summary.label}.{stmt.name}", stmt)
            )
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for target in stmt.targets:
                self._target(target)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            self._target(stmt.target, augmented=True)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
            self._target(stmt.target)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
                elif isinstance(child, ast.stmt):
                    self._stmt(child)

    def _target(self, target: ast.AST, augmented: bool = False) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            held = bool(self._held)
            self.summary.writes.append((target.attr, target.lineno, held))
            if held:
                self.summary.guarded_access.add(target.attr)
            if augmented:
                self._access(target.attr)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target(elt, augmented=augmented)
        elif isinstance(target, ast.Subscript):
            self._expr(target.value)
            self._expr(target.slice)

    # -- expressions --------------------------------------------------------------

    def _expr(self, node: ast.AST | None) -> None:
        if node is None or isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                self._access(node.attr)
            self._expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            self._expr(child)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        # Explicit lock acquire/release toggles.
        if isinstance(func, ast.Attribute) and func.attr in (
            "acquire", "release"
        ):
            ref = self._lock_ref(func.value)
            if ref is not None:
                if func.attr == "acquire":
                    self._acquire(ref, node.lineno)
                else:
                    self._release(ref)
                return
        # Same-class call: recorded for the cross-method pass.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            self.summary.calls.append(
                (func.attr, tuple(self._held), node.lineno)
            )
        # C002: blocking call while holding a lock that forbids it.
        if self._held:
            classified = _blocking_kind(node, self.model.queue_attrs)
            if classified is not None:
                kind, desc = classified
                for tok in self._held:
                    allowed = (
                        LOCK_CLASSES[tok.lock_class].blocking_ok
                        if tok.lock_class in LOCK_CLASSES
                        else ()
                    )
                    if kind not in allowed:
                        self.model.add(
                            "C002",
                            SEVERITY_ERROR,
                            f"{tok.label} (class {tok.lock_class!r}) held "
                            f"across blocking {kind} call {desc}(...) — "
                            "release the lock first or declare the "
                            "blocking kind in LOCK_ORDER",
                            node.lineno,
                        )
                        break
        self._expr(func.value if isinstance(func, ast.Attribute) else func)
        for arg in node.args:
            self._expr(arg)
        for kw in node.keywords:
            self._expr(kw.value)


class _ClassAnalyzer:
    """The per-class lock model plus the C001/C002/C003/C005 checks."""

    def __init__(
        self,
        rel_path: str,
        node: ast.ClassDef,
        site_attrs: dict[str, str],
        order: tuple[LockClass, ...],
        out: list[_RawFinding],
    ) -> None:
        self.rel_path = rel_path
        self.node = node
        self.order = order
        self.classes = {c.name: c for c in order}
        self.out = out
        self.locks: dict[str, LockInfo] = {}
        self.queue_attrs: set[str] = set()
        self.summaries: dict[str, _MethodSummary] = {}
        self._collect_model(site_attrs)

    def add(self, code: str, severity: str, message: str, line: int) -> None:
        self.out.append(
            _RawFinding(code, severity, f"{self.node.name}: {message}", line)
        )

    # -- model --------------------------------------------------------------------

    def _collect_model(self, site_attrs: dict[str, str]) -> None:
        for sub in ast.walk(self.node):
            attr: str | None = None
            value: ast.AST | None = None
            line = 0
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr, value, line = target.attr, sub.value, sub.lineno
                elif isinstance(target, ast.Name):
                    attr, value, line = target.id, sub.value, sub.lineno
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if isinstance(sub.target, ast.Name):
                    attr, value, line = sub.target.id, sub.value, sub.lineno
                elif (
                    isinstance(sub.target, ast.Attribute)
                    and isinstance(sub.target.value, ast.Name)
                    and sub.target.value.id == "self"
                ):
                    attr, value, line = (
                        sub.target.attr, sub.value, sub.lineno
                    )
            if attr is None or value is None:
                continue
            kind = _lock_ctor_kind(value)
            if kind is not None and attr not in self.locks:
                lock_class = site_attrs.get(attr)
                info = LockInfo(
                    attr,
                    kind,
                    lock_class,
                    self.classes[lock_class].rank
                    if lock_class in self.classes
                    else None,
                    line,
                )
                self.locks[attr] = info
            elif _queue_ctor(value):
                self.queue_attrs.add(attr)

    # -- analysis -----------------------------------------------------------------

    def analyze(self) -> None:
        pending: list[tuple[str, ast.FunctionDef]] = [
            (item.name, item)
            for item in self.node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        while pending:
            label, fn = pending.pop(0)
            walker = _MethodWalker(self, label)
            self.summaries[label] = walker.walk(fn)
            pending.extend(walker.nested)
        self._cross_method_pass()
        self._unguarded_write_pass()

    def _cross_method_pass(self) -> None:
        # Transitive acquire sets over the same-class call graph.
        trans: dict[str, set[tuple[str, str, str]]] = {
            label: {
                (attr, key, kind)
                for attr, key, kind, _line in summary.acquires
                if kind != "semaphore"
            }
            for label, summary in self.summaries.items()
        }
        changed = True
        while changed:
            changed = False
            for label, summary in self.summaries.items():
                for callee, _held, _line in summary.calls:
                    extra = trans.get(callee)
                    if extra and not extra <= trans[label]:
                        trans[label] |= extra
                        changed = True
        for summary in self.summaries.values():
            for callee, held, line in summary.calls:
                if callee not in trans or not held:
                    continue
                ranked = [t for t in held if t.rank is not None]
                worst = (
                    max(ranked, key=lambda t: t.rank) if ranked else None
                )
                for attr, key, kind in trans[callee]:
                    info = self.locks.get(attr)
                    if info is None:
                        continue
                    if kind != "rlock" and any(
                        t.attr == attr and t.key == key for t in held
                    ):
                        self.add(
                            "C005",
                            SEVERITY_ERROR,
                            f"call path self.{callee}() re-acquires "
                            f"non-reentrant lock self.{attr} already held "
                            "here — guaranteed self-deadlock",
                            line,
                        )
                    if (
                        worst is not None
                        and info.rank is not None
                        and info.rank < worst.rank
                    ):
                        order = " -> ".join(c.name for c in self.order)
                        self.add(
                            "C001",
                            SEVERITY_ERROR,
                            f"call path self.{callee}() acquires self.{attr} "
                            f"(class {info.lock_class!r}, rank {info.rank}) "
                            f"while {worst.label} (class "
                            f"{worst.lock_class!r}, rank {worst.rank}) is "
                            f"held; declared order is {order}",
                            line,
                        )

    def _unguarded_write_pass(self) -> None:
        guarded: set[str] = set()
        for summary in self.summaries.values():
            guarded |= summary.guarded_access
        skip = set(self.locks) | self.queue_attrs
        for label, summary in self.summaries.items():
            basename = label.rsplit(".", 1)[-1]
            if basename in _INIT_METHODS:
                continue
            for attr, line, held in summary.writes:
                if not held and attr in guarded and attr not in skip:
                    self.add(
                        "C003",
                        SEVERITY_WARNING,
                        f"self.{attr} written here with no lock held, but "
                        "accessed under a lock elsewhere in the class — "
                        "guard the write or suppress if the race is benign",
                        line,
                    )


def _thread_hygiene_pass(
    rel_path: str, tree: ast.AST, out: list[_RawFinding]
) -> None:
    """C004: every ``threading.Thread(...)`` names itself and pins
    daemon-ness explicitly."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _ctor_name(node.func) != "Thread":
            continue
        kwargs = {kw.arg for kw in node.keywords}
        missing = [kw for kw in ("name", "daemon") if kw not in kwargs]
        if missing:
            out.append(
                _RawFinding(
                    "C004",
                    SEVERITY_WARNING,
                    "threading.Thread created without explicit "
                    + "/".join(f"{kw}=" for kw in missing)
                    + " — anonymous threads make hangs undebuggable",
                    node.lineno,
                )
            )


def lint_concurrency(
    paths: list[Path],
    root: Path | None = None,
    sites: dict[str, dict[str, str]] | None = None,
    order: tuple[LockClass, ...] | None = None,
) -> tuple[list[Diagnostic], list[Diagnostic], list[dict]]:
    """Analyze every ``.py`` file under *paths*.

    Returns ``(findings, suppressed, locks)`` — unsuppressed and
    pragma-suppressed diagnostics plus the collected lock model (one
    dict per lock attribute).  *sites*/*order* default to the canonical
    registry; tests inject fixture registries.
    """
    sites = LOCK_SITES if sites is None else sites
    order = LOCK_ORDER if order is None else order
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    if root is None:
        root = Path.cwd()
    findings: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    locks: list[dict] = []
    for file in files:
        rel_path = _relative(file, root)
        text = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text)
        except SyntaxError as error:
            findings.append(
                Diagnostic(
                    "C000",
                    SEVERITY_ERROR,
                    f"file does not parse: {error.msg}",
                    location=f"{rel_path}:{error.lineno or 0}",
                )
            )
            continue
        pragmas = collect_pragmas(text)
        raw: list[_RawFinding] = []
        site_attrs = sites_for(rel_path, sites)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                analyzer = _ClassAnalyzer(
                    rel_path, node, site_attrs, order, raw
                )
                analyzer.analyze()
                for info in analyzer.locks.values():
                    locks.append(
                        {
                            "file": rel_path,
                            "class": node.name,
                            "attr": info.attr,
                            "kind": info.kind,
                            "lock_class": info.lock_class,
                            "rank": info.rank,
                            "line": info.line,
                        }
                    )
        _thread_hygiene_pass(rel_path, tree, raw)
        for item in raw:
            diagnostic = Diagnostic(
                item.code,
                item.severity,
                item.message,
                location=f"{rel_path}:{item.line}",
            )
            if is_suppressed(pragmas, item.line, item.code):
                suppressed.append(diagnostic)
            else:
                findings.append(diagnostic)
    return findings, suppressed, locks


def build_report(
    paths: list[Path],
    root: Path | None = None,
    sites: dict[str, dict[str, str]] | None = None,
    order: tuple[LockClass, ...] | None = None,
) -> dict:
    """The machine-readable report (the CI artifact schema)."""
    findings, suppressed, locks = lint_concurrency(
        paths, root=root, sites=sites, order=order
    )
    effective_order = LOCK_ORDER if order is None else order
    return {
        "tool": "xmlrel-concurrency",
        "lock_order": [
            {
                "name": c.name,
                "rank": c.rank,
                "blocking_ok": list(c.blocking_ok),
            }
            for c in effective_order
        ],
        "locks": locks,
        "findings": [d.to_dict() for d in findings],
        "suppressed": [d.to_dict() for d in suppressed],
        "count": len(findings),
    }


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    json_path = None
    strict = False
    if "--strict" in argv:
        strict = True
        argv.remove("--strict")
    if "--json" in argv:
        at = argv.index("--json")
        try:
            json_path = argv[at + 1]
        except IndexError:
            print(
                "xmlrel-concurrency: --json requires a path",
                file=sys.stderr,
            )
            return 2
        del argv[at:at + 2]
    if argv:
        paths = [Path(arg) for arg in argv]
        root = Path.cwd()
    else:
        package_dir = Path(__file__).resolve().parent.parent
        paths = [package_dir]
        root = package_dir.parent
    report = build_report(paths, root=root)
    if json_path:
        Path(json_path).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    findings = [
        Diagnostic(d["code"], d["severity"], d["message"], d["location"])
        for d in report["findings"]
    ]
    if findings:
        print(format_diagnostics(findings))
    summary = (
        f"xmlrel-concurrency: {len(findings)} finding(s), "
        f"{len(report['suppressed'])} suppressed, "
        f"{len(report['locks'])} lock(s) modeled"
    )
    print(summary)
    if strict:
        return 1 if findings else 0
    return 1 if has_errors(findings) else 0


if __name__ == "__main__":
    sys.exit(main())
