"""Runtime lock-order harness: wrapped locks that police the order.

The static analyzer (:mod:`repro.analysis.concurrency`) proves what it
can see syntactically; this module covers the rest at test time by
*watching real acquisitions*.  A :class:`LockWatcher` wraps the live
``threading.Lock`` objects of a running store in :class:`OrderedLock`
shims that record, per thread, the stack of locks held at every
acquire and feed a global acquired-after graph:

* acquiring a lock ranked **lower** (see
  :data:`~repro.analysis.concurrency.LOCK_ORDER`) than one already
  held records an *order violation*;
* acquiring a **same-class, lower-index** lock (shard locks must be
  taken in ascending shard order) records an order violation;
* a **cycle** in the acquired-after graph — lock A taken under B in
  one place, B under A in another, the classic ABBA deadlock even when
  no single run hangs — records a *cycle violation* with the path;
* re-acquiring a non-reentrant lock the same thread already holds
  raises :class:`~repro.errors.LockDisciplineError` *before* blocking,
  turning a silent deadlock into a typed test failure.

Violations are recorded (not raised) so a run completes and reports
everything; counters are exported through :mod:`repro.obs` as
``concurrency.acquires`` / ``concurrency.releases`` /
``concurrency.order_violations`` / ``concurrency.cycles`` /
``concurrency.double_acquires``.

Opt-in wiring: ``instrument_sharded_store`` swaps a live
:class:`~repro.serve.sharded.ShardedStore`'s locks for wrapped ones;
``tests/conftest.py`` applies it to every store the suite opens when
``XMLREL_LOCK_HARNESS=1`` (the CI ``concurrency-analysis`` job), and
fails the session on any recorded violation.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.analysis.concurrency import LOCK_CLASSES, LOCK_ORDER, LockClass
from repro.errors import LockDisciplineError
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class LockViolation:
    """One recorded breach of the declared lock order."""

    kind: str  # "order" | "cycle"
    thread: str
    acquired: str  # label of the lock being acquired
    held: tuple[str, ...]  # labels held at that moment, outermost first
    detail: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "thread": self.thread,
            "acquired": self.acquired,
            "held": list(self.held),
            "detail": self.detail,
        }


class OrderedLock:
    """A lock shim that reports every acquire/release to its watcher.

    Drop-in for ``threading.Lock`` at ``with lock:`` and
    ``acquire()``/``release()`` call sites.  Reentrant wrapping is
    idempotent (wrapping an :class:`OrderedLock` returns it unchanged).
    """

    __slots__ = ("inner", "watcher", "label", "lock_class", "rank",
                 "index", "reentrant")

    def __init__(
        self,
        inner,
        watcher: "LockWatcher",
        label: str,
        lock_class: str,
        rank: int | None,
        index: int | None = None,
        reentrant: bool = False,
    ) -> None:
        self.inner = inner
        self.watcher = watcher
        self.label = label
        self.lock_class = lock_class
        self.rank = rank
        self.index = index
        self.reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self.watcher._before_acquire(self)
        acquired = self.inner.acquire(blocking, timeout)
        if acquired:
            self.watcher._after_acquire(self)
        return acquired

    def release(self) -> None:
        self.watcher._after_release(self)
        self.inner.release()

    def locked(self) -> bool:
        return self.inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OrderedLock {self.label} rank={self.rank}>"


@dataclass
class _Report:
    acquires: int = 0
    releases: int = 0
    violations: list[LockViolation] = field(default_factory=list)
    edges: dict[str, set[str]] = field(default_factory=dict)


class LockWatcher:
    """Global acquisition recorder shared by every wrapped lock."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        order: tuple[LockClass, ...] = LOCK_ORDER,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.classes = {c.name: c for c in order}
        self._local = threading.local()
        # The watcher's own guard sits outside the declared order on
        # purpose: it is only ever held for queue/graph bookkeeping and
        # never while a wrapped lock is being acquired.
        self._meta = threading.Lock()  # lint: allow(L005)
        self._state = _Report()

    # -- wrapping -----------------------------------------------------------------

    def wrap(
        self,
        lock,
        label: str,
        lock_class: str,
        index: int | None = None,
        reentrant: bool = False,
    ) -> OrderedLock:
        """Wrap *lock* under *label*; ``lock_class`` must name a class
        in the declared order (rank None for unranked ad-hoc locks)."""
        if isinstance(lock, OrderedLock):
            return lock
        rank = (
            self.classes[lock_class].rank
            if lock_class in self.classes
            else None
        )
        return OrderedLock(
            lock, self, label, lock_class, rank, index, reentrant
        )

    # -- per-thread stack ---------------------------------------------------------

    def _stack(self) -> list[OrderedLock]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held_labels(self) -> tuple[str, ...]:
        """Labels the calling thread holds right now, outermost first."""
        return tuple(lock.label for lock in self._stack())

    # -- acquisition hooks --------------------------------------------------------

    def _before_acquire(self, lock: OrderedLock) -> None:
        if lock.reentrant:
            return
        for held in self._stack():
            if held is lock:
                self.metrics.counter("concurrency.double_acquires").inc()
                raise LockDisciplineError(
                    f"thread {threading.current_thread().name!r} "
                    f"re-acquired non-reentrant lock {lock.label!r} "
                    f"it already holds (held: "
                    f"{', '.join(self.held_labels())}) — this would "
                    "deadlock"
                )

    def _after_acquire(self, lock: OrderedLock) -> None:
        stack = self._stack()
        self.metrics.counter("concurrency.acquires").inc()
        thread = threading.current_thread().name
        held_labels = tuple(h.label for h in stack)
        violations: list[LockViolation] = []
        for held in stack:
            inverted = (
                held.rank is not None
                and lock.rank is not None
                and lock.rank < held.rank
            )
            misindexed = (
                held.lock_class == lock.lock_class
                and held.index is not None
                and lock.index is not None
                and lock.index < held.index
            )
            if inverted or misindexed:
                what = (
                    f"rank {lock.rank} under rank {held.rank}"
                    if inverted
                    else f"index {lock.index} under index {held.index} "
                    f"of class {lock.lock_class!r}"
                )
                violations.append(
                    LockViolation(
                        "order",
                        thread,
                        lock.label,
                        held_labels,
                        f"acquired {lock.label} ({what}) while holding "
                        f"{held.label}",
                    )
                )
        with self._meta:
            self._state.acquires += 1
            new_edges = []
            for held in stack:
                if held is lock:
                    # Reentrant re-acquire: a self-edge is not an
                    # ordering fact, and would read as a cycle.
                    continue
                targets = self._state.edges.setdefault(held.label, set())
                if lock.label not in targets:
                    targets.add(lock.label)
                    new_edges.append(held.label)
            self._state.violations.extend(violations)
            cycle = None
            if new_edges:
                cycle = self._find_cycle_locked(lock.label, set(new_edges))
            if cycle is not None:
                self._state.violations.append(
                    LockViolation(
                        "cycle",
                        thread,
                        lock.label,
                        held_labels,
                        "acquired-after cycle: " + " -> ".join(cycle),
                    )
                )
        if violations:
            self.metrics.counter("concurrency.order_violations").inc(
                len(violations)
            )
        if cycle is not None:
            self.metrics.counter("concurrency.cycles").inc()
        stack.append(lock)

    def _find_cycle_locked(
        self, start: str, targets: set[str]
    ) -> list[str] | None:
        """A path ``start -> ... -> t`` for some new edge ``t -> start``
        (DFS over the acquired-after graph; caller holds ``_meta``)."""
        path = [start]
        seen = {start}

        def dfs(label: str) -> list[str] | None:
            for nxt in sorted(self._state.edges.get(label, ())):
                if nxt in targets:
                    return path + [nxt, start]
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                found = dfs(nxt)
                if found is not None:
                    return found
                path.pop()
            return None

        return dfs(start)

    def _after_release(self, lock: OrderedLock) -> None:
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] is lock:
                del stack[position]
                break
        self.metrics.counter("concurrency.releases").inc()
        with self._meta:
            self._state.releases += 1

    # -- reporting ----------------------------------------------------------------

    @property
    def violations(self) -> tuple[LockViolation, ...]:
        with self._meta:
            return tuple(self._state.violations)

    def report(self) -> dict:
        """JSON-able summary (the CI ``lock-harness-report.json``)."""
        with self._meta:
            return {
                "tool": "xmlrel-lockharness",
                "acquires": self._state.acquires,
                "releases": self._state.releases,
                "edges": {
                    source: sorted(targets)
                    for source, targets in sorted(self._state.edges.items())
                },
                "violations": [
                    v.to_dict() for v in self._state.violations
                ],
                "count": len(self._state.violations),
            }

    def write_report(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.report(), handle, indent=2)
            handle.write("\n")

    def assert_clean(self) -> None:
        """Raise :class:`LockDisciplineError` when violations were
        recorded (the test-teardown gate)."""
        violations = self.violations
        if violations:
            lines = "; ".join(v.detail for v in violations[:5])
            raise LockDisciplineError(
                f"{len(violations)} lock-order violation(s) recorded: "
                f"{lines}"
            )

    def reset(self) -> None:
        with self._meta:
            self._state = _Report()


def instrument_sharded_store(store, watcher: LockWatcher) -> None:
    """Swap a live :class:`~repro.serve.sharded.ShardedStore`'s locks
    for watched :class:`OrderedLock` shims (idempotent).

    Wraps the store's shard/map locks, the shard-map and shard-state
    mirrors, every primary pool's bookkeeping and plan-cache locks, the
    executor's replica round-robin lock, and the metrics registry lock
    — the lock set whose relative order the registry declares.  Queue
    internals, per-instrument metric locks, and replica pools built
    after instrumentation stay unwrapped.
    """
    store._shard_locks = [
        watcher.wrap(lock, f"shard[{index}]", "shard", index=index)
        for index, lock in enumerate(store._shard_locks)
    ]
    store._map_lock = watcher.wrap(store._map_lock, "map", "map")
    store.shard_map._lock = watcher.wrap(
        store.shard_map._lock, "map.mirror", "map"
    )
    store.shard_state._lock = watcher.wrap(
        store.shard_state._lock, "map.state", "map"
    )
    for shard, pool in store.pools.items():
        pool._lock = watcher.wrap(
            pool._lock, f"pool[{shard}]", "pool", index=shard
        )
        pool.plan_cache._lock = watcher.wrap(
            pool.plan_cache._lock, f"pool[{shard}].plans", "pool"
        )
    store.executor._replica_lock = watcher.wrap(
        store.executor._replica_lock, "pool.replica_rr", "pool"
    )
    store.metrics._lock = watcher.wrap(
        store.metrics._lock, "metrics", "metrics"
    )
