"""The SQL plan linter: static checks over translated statements.

The XPath→SQL translators emit a typed AST
(:mod:`repro.relational.sql`), so generated plans can be *verified*
instead of trusted: :func:`lint_statement` walks a statement against the
live :class:`~repro.relational.introspect.SchemaCatalog` and reports:

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
``P001``  error     table/view that does not exist in the database
``P002``  error     column that no table in scope provides, or a column
                    reference through an unknown alias
``P003``  error     disconnected join graph — some FROM/JOIN aliases
                    share no condition with the rest (a cartesian
                    product)
``P004``  error     a scanned table carries a ``doc_id`` column but the
                    statement never constrains it (cross-document
                    leakage)
``P005``  error     recursive CTE whose every arm references itself —
                    no base case, the recursion cannot terminate
``P006``  advice    equality join on a base-table column that no index
                    prefix covers (full-scan join)
========  ========  =====================================================

The linter is deliberately *lenient* where static knowledge runs out:
CTEs are opaque (any column resolves), ``Raw`` fragments are not parsed,
and statements with a constant-false WHERE (the translators' canonical
"provably empty" form) skip the semantic checks — an empty result can't
leak or multiply rows.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    Diagnostic,
    SEVERITY_ADVICE,
    SEVERITY_ERROR,
)
from repro.relational.introspect import SchemaCatalog, TableInfo
from repro.relational.sql import (
    And,
    Arith,
    Col,
    Comparison,
    Exists,
    InList,
    InSubquery,
    Like,
    Not,
    Or,
    Raw,
    ScalarSubquery,
    Select,
    Union,
    WithQuery,
)

#: Graph node standing for every alias of the *enclosing* select inside
#: a correlated subquery: a condition tying a local alias to any outer
#: alias anchors it (the correlation is the join).
_OUTER = "<outer>"


def lint_statement(
    statement: Select | Union | WithQuery, catalog: SchemaCatalog
) -> tuple[Diagnostic, ...]:
    """All diagnostics for one translated statement."""
    linter = _PlanLinter(catalog)
    linter.check_statement(statement)
    return tuple(linter.diagnostics)


def _iter_children(expr):
    """Immediate sub-expressions of *expr* (subqueries excluded)."""
    if isinstance(expr, (And, Or)):
        return expr.operands
    if isinstance(expr, Not):
        return (expr.operand,)
    if isinstance(expr, (Comparison, Arith)):
        return (expr.left, expr.right)
    if isinstance(expr, (Like, InList)):
        return (expr.operand,)
    if isinstance(expr, InSubquery):
        return (expr.operand,)
    func_args = getattr(expr, "args", None)
    if func_args is not None:
        return tuple(func_args)
    return ()


def _subqueries(expr):
    """The directly nested subquery selects of *expr*, if any."""
    if isinstance(expr, (Exists, ScalarSubquery, InSubquery)):
        return (expr.query,)
    return ()


def _own_expressions(select: Select):
    """Every expression appearing directly in *select*'s clauses."""
    for expr, _alias in select.columns:
        yield expr
    for join in select.joins:
        yield join.condition
    yield from select.conditions
    for expr, _asc in select.order:
        yield expr


class _ExprScan:
    """Everything a single depth-first pass over one expression yields.

    Translated plans are linted on every cold translation, so the walk
    is the linter's hot path: one pass collects what the four checks
    would otherwise each re-traverse for.
    """

    __slots__ = ("cols", "aliases", "doc_aliases", "eq_col_pairs", "subqueries")

    def __init__(self, expr) -> None:
        #: Col nodes outside any subquery (P002 checks these; subquery
        #: columns are checked when the subquery's own select is linted).
        self.cols: list[Col] = []
        #: Every qualified alias referenced anywhere, subqueries
        #: included (join-graph connectivity).
        self.aliases: set[str] = set()
        #: Aliases whose ``doc_id`` appears as a comparison operand
        #: anywhere, subqueries included (document-predicate check).
        self.doc_aliases: set[str] = set()
        #: Top-level ``a.x = b.y`` column pairs (index-coverage check).
        self.eq_col_pairs: list[tuple[Col, Col]] = []
        #: Directly nested subquery selects at this level.
        self.subqueries: list[Select] = []
        self._scan(expr)

    def _note_doc_operand(self, node) -> None:
        if (
            isinstance(node, Col)
            and node.table is not None
            and node.name.lower() == "doc_id"
        ):
            self.doc_aliases.add(node.table.lower())

    def _scan(self, expr) -> None:
        # (node, inside_subquery) — columns inside subqueries count for
        # connectivity/doc-predicates but not for this level's P002.
        stack: list[tuple[object, bool]] = [(expr, False)]
        while stack:
            node, nested = stack.pop()
            if isinstance(node, Col):
                if not nested:
                    self.cols.append(node)
                if node.table is not None:
                    self.aliases.add(node.table.lower())
                continue
            if isinstance(node, Comparison):
                self._note_doc_operand(node.left)
                self._note_doc_operand(node.right)
                if (
                    not nested
                    and node.op == "="
                    and isinstance(node.left, Col)
                    and isinstance(node.right, Col)
                ):
                    self.eq_col_pairs.append((node.left, node.right))
            elif isinstance(node, (Like, InList, InSubquery)):
                self._note_doc_operand(node.operand)
            for child in _iter_children(node):
                stack.append((child, nested))
            for sub in _subqueries(node):
                if not nested:
                    self.subqueries.append(sub)
                for sub_expr in _own_expressions(sub):
                    stack.append((sub_expr, True))


def _is_constant_false(expr) -> bool:
    """The translators' canonical provably-empty forms."""
    if isinstance(expr, Raw):
        return expr.sql.strip() == "0"
    if isinstance(expr, Or):
        return not expr.operands
    return False


class _PlanLinter:
    """One lint pass; collects deduplicated diagnostics."""

    def __init__(self, catalog: SchemaCatalog) -> None:
        self.catalog = catalog
        self.diagnostics: list[Diagnostic] = []
        self._seen: set[Diagnostic] = set()

    def _report(
        self, code: str, severity: str, message: str, location: str = ""
    ) -> None:
        diagnostic = Diagnostic(code, severity, message, location)
        if diagnostic not in self._seen:
            self._seen.add(diagnostic)
            self.diagnostics.append(diagnostic)

    # -- statement dispatch --------------------------------------------------

    def check_statement(self, statement) -> None:
        if isinstance(statement, WithQuery):
            visible: set[str] = set()
            for name, query in statement.ctes:
                self._check_cte(name, query, visible)
                visible.add(name.lower())
            if statement.final is not None:
                self.check_select(statement.final, frozenset(visible), {})
        elif isinstance(statement, Union):
            for select in statement.selects:
                self.check_select(select, frozenset(), {})
        elif isinstance(statement, Select):
            self.check_select(statement, frozenset(), {})

    def _check_cte(self, name: str, query, visible: set[str]) -> None:
        lowered = name.lower()
        in_scope = frozenset(visible | {lowered})
        arms = query.selects if isinstance(query, Union) else (query,)
        self_referencing = [
            lowered in self._referenced_tables(arm) for arm in arms
        ]
        if self_referencing and all(self_referencing):
            self._report(
                "P005",
                SEVERITY_ERROR,
                f"recursive CTE {name!r} has no base case: every arm "
                "references the CTE itself, so the recursion can never "
                "start (or stop)",
                location=f"cte {name}",
            )
        for arm in arms:
            self.check_select(arm, in_scope, {})

    def _referenced_tables(self, select: Select) -> set[str]:
        """Table names scanned by *select*, including its subqueries."""
        names: set[str] = set()
        stack = [select]
        while stack:
            current = stack.pop()
            if current.from_item is not None:
                names.add(current.from_item.table.lower())
            for join in current.joins:
                names.add(join.table.table.lower())
            for expr in _own_expressions(current):
                stack.extend(_ExprScan(expr).subqueries)
        return names

    # -- per-select checks ---------------------------------------------------

    def check_select(
        self,
        select: Select,
        cte_names: frozenset[str],
        outer_scope: dict[str, TableInfo | None],
    ) -> None:
        """Lint one SELECT.  ``outer_scope`` maps the enclosing select's
        aliases (for correlated subqueries)."""
        if select.from_item is None:
            return  # render() raises on this; nothing to lint
        refs = [select.from_item] + [j.table for j in select.joins]
        local: dict[str, TableInfo | None] = {}
        for ref in refs:
            table_name = ref.table.lower()
            if table_name in cte_names:
                local[ref.alias.lower()] = None  # CTE: opaque, any column
                continue
            info = self.catalog.table(table_name)
            if info is None:
                self._report(
                    "P001",
                    SEVERITY_ERROR,
                    f"unknown table {ref.table!r}",
                    location=f"FROM {ref.table} AS {ref.alias}",
                )
                local[ref.alias.lower()] = None  # avoid cascading P002
            else:
                local[ref.alias.lower()] = info
        scope: dict[str, TableInfo | None] = dict(outer_scope)
        scope.update(local)

        # One pass per clause expression; every later check reads the
        # scan instead of re-walking the tree.
        scans = [(expr, _ExprScan(expr)) for expr in _own_expressions(select)]
        for _expr, scan in scans:
            for col in scan.cols:
                self._check_column(col, scope)
            for sub in scan.subqueries:
                self.check_select(sub, cte_names, scope)

        if any(_is_constant_false(c) for c in select.conditions):
            # A provably-empty select can't leak rows or multiply them;
            # the structural checks below would only produce noise.
            return

        scan_of = {id(expr): scan for expr, scan in scans}
        self._check_connectivity(select, local, outer_scope, scan_of)
        self._check_doc_predicates(select, local, scans)
        self._check_join_indexes(select, local, scan_of)

    def _check_column(self, col: Col, scope) -> None:
        if col.table is not None:
            alias = col.table.lower()
            if alias not in scope:
                self._report(
                    "P002",
                    SEVERITY_ERROR,
                    f"column {col.table}.{col.name} references an alias "
                    "that is not in scope",
                    location=f"{col.table}.{col.name}",
                )
                return
            info = scope[alias]
            if info is not None and not info.has_column(col.name):
                self._report(
                    "P002",
                    SEVERITY_ERROR,
                    f"table {info.name!r} has no column {col.name!r}",
                    location=f"{col.table}.{col.name}",
                )
            return
        # Unqualified: fine if any table in scope provides it (or a CTE
        # might).
        if scope and not any(
            info is None or info.has_column(col.name)
            for info in scope.values()
        ):
            self._report(
                "P002",
                SEVERITY_ERROR,
                f"no table in scope has a column {col.name!r}",
                location=col.name,
            )

    # -- join-graph connectivity (P003) --------------------------------------

    @staticmethod
    def _condition_aliases(scan: _ExprScan, local, outer_scope) -> set[str]:
        """Join-graph nodes one condition touches: local aliases plus the
        ``<outer>`` anchor when it references the enclosing select."""
        nodes: set[str] = set()
        for alias in scan.aliases:
            if alias in local:
                nodes.add(alias)
            elif alias in outer_scope:
                nodes.add(_OUTER)
        return nodes

    def _check_connectivity(self, select, local, outer_scope, scan_of) -> None:
        if len(local) < 2:
            return
        nodes = set(local)
        adjacency: dict[str, set[str]] = {n: set() for n in nodes}
        conditions = [j.condition for j in select.joins]
        conditions.extend(select.conditions)
        for condition in conditions:
            scan = scan_of.get(id(condition)) or _ExprScan(condition)
            touched = self._condition_aliases(scan, local, outer_scope)
            if _OUTER in touched:
                adjacency.setdefault(_OUTER, set())
                nodes.add(_OUTER)
            touched_list = sorted(touched)
            for i, a in enumerate(touched_list):
                for b in touched_list[i + 1:]:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        # BFS from one node; every alias must be reachable.
        start = next(iter(sorted(nodes)))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        stranded = sorted(n for n in nodes if n not in seen)
        if stranded:
            connected = sorted(n for n in nodes if n in seen and n != _OUTER)
            self._report(
                "P003",
                SEVERITY_ERROR,
                "disconnected join graph (cartesian product): "
                f"alias(es) {', '.join(stranded)} share no condition "
                f"with {', '.join(connected)}",
                location=f"FROM {select.from_item.table}",
            )

    # -- document predicate (P004) -------------------------------------------

    def _check_doc_predicates(self, select, local, scans) -> None:
        constrained: set[str] = set()
        for _expr, scan in scans:
            constrained |= scan.doc_aliases
        for alias, info in local.items():
            if info is None or not info.has_column("doc_id"):
                continue
            if alias not in constrained:
                self._report(
                    "P004",
                    SEVERITY_ERROR,
                    f"table {info.name!r} (alias {alias!r}) is scanned "
                    "without a doc_id predicate — rows of other "
                    "documents leak into the result",
                    location=f"{info.name} AS {alias}",
                )

    # -- index coverage of joins (P006) --------------------------------------

    def _check_join_indexes(self, select, local, scan_of) -> None:
        for join in select.joins:
            alias = join.table.alias.lower()
            info = local.get(alias)
            if info is None or info.is_view:
                continue
            scan = scan_of.get(id(join.condition)) or _ExprScan(
                join.condition
            )
            for left, right in scan.eq_col_pairs:
                for side in (left, right):
                    if not (
                        side.table is not None
                        and side.table.lower() == alias
                    ):
                        continue
                    if not info.covers(side.name):
                        self._report(
                            "P006",
                            SEVERITY_ADVICE,
                            f"equality join on {alias}.{side.name} is "
                            "not covered by any index prefix of "
                            f"{info.name!r} (full-scan join)",
                            location=f"JOIN {info.name} AS {alias}",
                        )
