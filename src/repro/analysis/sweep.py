"""The plan-lint sweep — the benchmark workload × every scheme.

Runs every query of the benchmark suite (the XMark-style auction
workload Q1–Q16 and the DBLP workload D1–D6) through each registered
scheme's XPath→SQL translator with plan linting on, and collects every
diagnostic the linter produces (run as ``python -m repro.analysis.sweep``).

This is the CI gate behind the static-analysis layer: a translator bug
that emits a dangling column reference, a cartesian product, or a
statement missing its document predicate shows up here as an
error-severity diagnostic and fails the job — *before* any differential
test has to chase the wrong rows it would return.

Queries a scheme legitimately cannot translate
(:class:`~repro.errors.UnsupportedQueryError`) are recorded as skipped,
not failed.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.core.registry import available_schemes
from repro.core.store import XmlRelStore
from repro.errors import UnsupportedQueryError
from repro.workloads import (
    AUCTION_QUERIES,
    DBLP_QUERIES,
    auction_dtd,
    dblp_dtd,
    generate_auction,
    generate_dblp,
)

#: Kept small — the sweep lints *plans*, not data, so corpus size only
#: affects the data-dependent schemes' label/partition discovery.
AUCTION_SCALE = 0.02
DBLP_RECORDS = 60


def _corpora():
    """The benchmark corpora as ``(name, document, dtd, queries)``."""
    return [
        (
            "auction",
            generate_auction(scale_factor=AUCTION_SCALE),
            auction_dtd(),
            AUCTION_QUERIES,
        ),
        (
            "dblp",
            generate_dblp(record_count=DBLP_RECORDS),
            dblp_dtd(),
            DBLP_QUERIES,
        ),
    ]


def run_sweep(schemes: list[str] | None = None) -> dict:
    """Lint the full workload across *schemes* (default: all registered).

    Returns a JSON-ready report::

        {"checked": N, "skipped": N, "errors": N,
         "diagnostics": [{...}, ...], "entries": [...]}
    """
    schemes = list(schemes or available_schemes())
    checked = skipped = 0
    diagnostics: list[tuple[str, str, str, Diagnostic]] = []
    entries: list[dict] = []
    for corpus_name, document, dtd, queries in _corpora():
        for scheme in schemes:
            kwargs = {"dtd": dtd} if scheme == "inlining" else {}
            with XmlRelStore.open(scheme=scheme, **kwargs) as store:
                doc_id = store.store(document, corpus_name)
                translator = store.scheme.translator()
                for spec in queries:
                    try:
                        plans, _ = translator.plans_for(doc_id, spec.xpath)
                    except UnsupportedQueryError:
                        skipped += 1
                        entries.append(
                            {
                                "corpus": corpus_name,
                                "scheme": scheme,
                                "query": spec.key,
                                "status": "skipped",
                            }
                        )
                        continue
                    checked += 1
                    found = [d for p in plans for d in p.diagnostics]
                    entries.append(
                        {
                            "corpus": corpus_name,
                            "scheme": scheme,
                            "query": spec.key,
                            "status": "checked",
                            "diagnostics": [d.to_dict() for d in found],
                        }
                    )
                    diagnostics.extend(
                        (corpus_name, scheme, spec.key, d) for d in found
                    )
    errors = [d for *_ctx, d in diagnostics if d.is_error]
    return {
        "checked": checked,
        "skipped": skipped,
        "errors": len(errors),
        "diagnostics": [
            {"corpus": c, "scheme": s, "query": q, **d.to_dict()}
            for c, s, q, d in diagnostics
        ],
        "entries": entries,
    }


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    json_path = None
    if "--json" in argv:
        at = argv.index("--json")
        try:
            json_path = argv[at + 1]
        except IndexError:
            print("sweep: --json requires a path", file=sys.stderr)
            return 2
        del argv[at:at + 2]
    report = run_sweep(argv or None)
    if json_path:
        Path(json_path).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    print(
        f"plan-lint sweep: {report['checked']} plan(s) checked, "
        f"{report['skipped']} skipped, "
        f"{len(report['diagnostics'])} diagnostic(s), "
        f"{report['errors']} error(s)"
    )
    for item in report["diagnostics"]:
        print(
            f"  [{item['corpus']}/{item['scheme']}/{item['query']}] "
            f"{item['code']} {item['severity']}: {item['message']}"
        )
    return 1 if report["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
