"""The shared diagnostic record all analyzers emit.

Every check in :mod:`repro.analysis` — the SQL plan linter, the XPath
static analyzer, the repo linter, and the concurrency analyzer —
reports through one frozen :class:`Diagnostic` shape so callers (strict-mode raising, span
attachment, :class:`~repro.obs.report.QueryReport`, CI report files)
handle them uniformly.

Severities
----------

``error``
    The plan/code is wrong: it would return incorrect rows (cross-
    document leakage, cartesian products), fail at execution time
    (unknown tables/columns, divergent recursion), or violates a
    project invariant.  Strict lint mode raises on these; CI blocks.
``warning``
    Suspicious but possibly intended (e.g. a provably-empty path).
``advice``
    Performance guidance with no correctness impact (e.g. a join
    column no index covers).

Diagnostic codes are stable strings (``P0xx`` for plan lint, ``X0xx``
for XPath analysis, ``L0xx`` for the repo lint, ``C0xx`` for the
concurrency analyzer); the full table lives in DESIGN.md §7 and §12.

False positives from the AST-based linters are suppressed in place with
``# lint: allow(CODE)`` pragmas — see :func:`collect_pragmas`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Iterable

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_ADVICE = "advice"

#: Sort rank: most severe first.
_SEVERITY_RANK = {
    SEVERITY_ERROR: 0,
    SEVERITY_WARNING: 1,
    SEVERITY_ADVICE: 2,
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analyzer.

    ``location`` is analyzer-specific: ``file:line`` for the repo lint,
    a table/alias/CTE description for the plan linter, the XPath source
    for the path analyzer.  Frozen so diagnostics can live inside cached
    plans and be deduplicated by value.
    """

    code: str
    severity: str
    message: str
    location: str = ""

    @property
    def is_error(self) -> bool:
        return self.severity == SEVERITY_ERROR

    def format(self) -> str:
        """One human-readable line: ``location: CODE severity: message``."""
        prefix = f"{self.location}: " if self.location else ""
        return f"{prefix}{self.code} {self.severity}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-able form (the CI report artifact)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
        }


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any diagnostic is error-severity."""
    return any(d.is_error for d in diagnostics)


def sorted_by_severity(
    diagnostics: Iterable[Diagnostic],
) -> list[Diagnostic]:
    """Most severe first, then by code, then location (stable output)."""
    return sorted(
        diagnostics,
        key=lambda d: (
            _SEVERITY_RANK.get(d.severity, len(_SEVERITY_RANK)),
            d.code,
            d.location,
        ),
    )


def format_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    """All diagnostics, one formatted line each, most severe first."""
    return "\n".join(d.format() for d in sorted_by_severity(diagnostics))


#: In-source suppression: ``# lint: allow(C002)`` (comma-separated for
#: several codes).  On a code line it covers that line; on a line that
#: is only a comment it covers the next line too, so long statements
#: can carry the pragma above them.
_PRAGMA = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")


def collect_pragmas(text: str) -> dict[int, frozenset[str]]:
    """``{line number: allowed codes}`` for every pragma in *text*."""
    allows: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip()
            for code in match.group(1).split(",")
            if code.strip()
        )
        if not codes:
            continue
        allows[lineno] = allows.get(lineno, frozenset()) | codes
        if line.lstrip().startswith("#"):
            allows[lineno + 1] = allows.get(lineno + 1, frozenset()) | codes
    return allows


def is_suppressed(
    pragmas: dict[int, frozenset[str]], line: int, code: str
) -> bool:
    """True when a pragma on *line* allows *code*."""
    return code in pragmas.get(line, frozenset())
