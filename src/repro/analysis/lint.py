"""``xmlrel-lint`` — the repository's own static lint gate.

A small Python-``ast`` walker enforcing the layering rules the codebase
promises (run as ``python -m repro.analysis.lint``):

L001
    Raw SQL string literals outside the modules allowed to speak SQL
    (the relational layer, the storage schemes, updates, and the fault
    injector).  Everything else must build statements through the typed
    AST in :mod:`repro.relational.sql`, so the plan linter can see them.
L002
    Reach-arounds past the span-instrumented database wrappers: touching
    ``_conn`` / ``_raw_execute`` / ``_raw_executemany`` or importing
    :mod:`sqlite3` outside the database module itself (plus the retry
    and fault-injection layers that legitimately wrap it).  Such calls
    bypass tracing, retry, and fault injection all at once.
L003
    Bare ``except:`` clauses — they swallow ``KeyboardInterrupt`` and
    hide real failures behind the library's single-exception promise.
L004
    A :class:`~repro.storage.base.MappingScheme` subclass with a
    non-empty ``name`` that is not mentioned in ``core/registry.py`` —
    an unregistered scheme silently disappears from
    ``available_schemes()`` and the differential suite.
L005
    Raw ``threading.Lock()`` / ``threading.RLock()`` construction in a
    module not registered in the lock-order registry
    (:data:`repro.analysis.concurrency.LOCK_SITES`).  Every lock must
    either join the registry — so the concurrency analyzer and the
    runtime harness know its rank — or carry an explicit
    ``# lint: allow(L005)`` pragma.

A finding is suppressed in place by ``# lint: allow(L00x)`` on the
offending line or on a comment-only line directly above it (the same
pragma syntax the concurrency analyzer honors).

Findings come back as the shared :class:`~repro.analysis.Diagnostic`
record; the CLI exits non-zero when any are found, which is what makes
it usable as a CI gate.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from pathlib import Path

from repro.analysis.concurrency import LOCK_SITES
from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    Diagnostic,
    collect_pragmas,
    format_diagnostics,
    is_suppressed,
)

#: Modules allowed to contain raw SQL string literals (L001), as
#: ``/``-separated path suffixes relative to the package root.
SQL_ALLOWED = (
    "repro/relational/",
    "repro/storage/",
    "repro/updates.py",
    "repro/reliability/faults.py",
)

#: Modules allowed to touch the raw sqlite3 connection (L002).
CONN_ALLOWED = (
    "repro/relational/database.py",
    "repro/relational/retry.py",
    "repro/reliability/faults.py",
)

#: Attribute names whose access constitutes a wrapper reach-around.
RAW_ATTRIBUTES = frozenset({"_conn", "_raw_execute", "_raw_executemany"})

#: A string literal "looks like SQL" when it opens with a statement
#: keyword in upper case — the repo's rendered SQL is always uppercase,
#: while prose error messages never lead with one.
_SQL_LITERAL = re.compile(
    r"^\s*(SELECT|INSERT|UPDATE|DELETE|CREATE|DROP|ALTER|PRAGMA|WITH"
    r"|VACUUM|ANALYZE|EXPLAIN|BEGIN|COMMIT|ROLLBACK|SAVEPOINT|RELEASE"
    r"|REINDEX)\b"
)


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _is_allowed(rel_path: str, suffixes: tuple[str, ...]) -> bool:
    return any(
        rel_path == suffix or rel_path.endswith("/" + suffix)
        or (suffix.endswith("/") and ("/" + suffix) in ("/" + rel_path))
        for suffix in suffixes
    )


def _docstring_constants(tree: ast.AST) -> set[int]:
    """Positions (by ``id``) of docstring expression nodes, so L001
    never fires on documentation that quotes SQL."""
    ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                ids.add(id(body[0].value))
    return ids


class _FileLinter(ast.NodeVisitor):
    """One file's worth of L001–L003 and L005 checks."""

    def __init__(self, rel_path: str, tree: ast.AST) -> None:
        self.rel_path = rel_path
        self.findings: list[Diagnostic] = []
        self._sql_allowed = _is_allowed(rel_path, SQL_ALLOWED)
        self._conn_allowed = _is_allowed(rel_path, CONN_ALLOWED)
        self._lock_site = _is_allowed(rel_path, tuple(LOCK_SITES))
        self._docstrings = _docstring_constants(tree)
        #: Names imported from ``threading`` (so bare ``Lock()`` after
        #: ``from threading import Lock`` still trips L005).
        self._threading_names = {
            alias.asname or alias.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom)
            and node.module == "threading"
            for alias in node.names
        }

    def _add(self, code: str, message: str, line: int) -> None:
        self.findings.append(
            Diagnostic(
                code,
                SEVERITY_ERROR,
                message,
                location=f"{self.rel_path}:{line}",
            )
        )

    # -- L001: raw SQL literals ------------------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            not self._sql_allowed
            and isinstance(node.value, str)
            and id(node) not in self._docstrings
            and _SQL_LITERAL.match(node.value)
        ):
            head = node.value.strip().split(None, 1)[0]
            self._add(
                "L001",
                f"raw SQL string literal ({head} ...) outside the "
                "relational/storage layers — build it through "
                "repro.relational.sql instead",
                node.lineno,
            )
        self.generic_visit(node)

    # -- L002: wrapper reach-arounds -------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self._conn_allowed and node.attr in RAW_ATTRIBUTES:
            self._add(
                "L002",
                f"access to {node.attr!r} bypasses the span-instrumented "
                "database wrappers (tracing, retry, and fault injection)",
                node.lineno,
            )
        self.generic_visit(node)

    def _check_sqlite_import(self, names, lineno: int) -> None:
        if not self._conn_allowed and any(
            alias.name.split(".")[0] == "sqlite3" for alias in names
        ):
            self._add(
                "L002",
                "sqlite3 imported outside the database layer — go "
                "through repro.relational.database instead",
                lineno,
            )

    def visit_Import(self, node: ast.Import) -> None:
        self._check_sqlite_import(node.names, node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "sqlite3":
            self._check_sqlite_import(
                [ast.alias(name="sqlite3")], node.lineno
            )
        self.generic_visit(node)

    # -- L005: unregistered lock construction ------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if not self._lock_site:
            func = node.func
            name = ""
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "threading"
            ):
                name = func.attr
            elif (
                isinstance(func, ast.Name)
                and func.id in self._threading_names
            ):
                name = func.id
            if name in ("Lock", "RLock"):
                self._add(
                    "L005",
                    f"threading.{name}() constructed outside the modules "
                    "registered in repro.analysis.concurrency.LOCK_SITES "
                    "— register the lock (so the concurrency analyzer "
                    "can rank it) or add '# lint: allow(L005)'",
                    node.lineno,
                )
        self.generic_visit(node)

    # -- L003: bare except -------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                "L003",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit — "
                "catch a concrete exception type",
                node.lineno,
            )
        self.generic_visit(node)


def _scheme_classes(trees: dict[str, ast.AST]) -> dict[str, tuple[str, int]]:
    """Transitive ``MappingScheme`` subclasses with a non-empty ``name``
    class attribute, as ``{class_name: (rel_path, lineno)}``."""
    bases: dict[str, tuple[set[str], str, int, str]] = {}
    for rel_path, tree in trees.items():
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                base_names = {
                    b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                    for b in node.bases
                }
                bases[node.name] = (
                    base_names,
                    rel_path,
                    node.lineno,
                    _declared_name(node),
                )
    # Transitive closure from MappingScheme.
    subclasses: set[str] = set()
    changed = True
    while changed:
        changed = False
        for cls, (base_names, *_rest) in bases.items():
            if cls in subclasses:
                continue
            if "MappingScheme" in base_names or base_names & subclasses:
                subclasses.add(cls)
                changed = True
    return {
        cls: (bases[cls][1], bases[cls][2])
        for cls in subclasses
        if bases[cls][3]
    }


def _declared_name(node: ast.ClassDef) -> str:
    """The class body's ``name = "..."`` value ("" when absent/empty)."""
    for item in node.body:
        target = None
        value = None
        if isinstance(item, ast.Assign) and len(item.targets) == 1:
            target, value = item.targets[0], item.value
        elif isinstance(item, ast.AnnAssign):
            target, value = item.target, item.value
        if (
            isinstance(target, ast.Name)
            and target.id == "name"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value
    return ""


def _check_registry(trees: dict[str, ast.AST]) -> list[Diagnostic]:
    """L004: every named scheme class must be mentioned in the registry."""
    registry_path = next(
        (p for p in trees if p.endswith("core/registry.py")), None
    )
    if registry_path is None:
        return []  # registry not part of this scan — nothing to check
    registered = {
        node.id
        for node in ast.walk(trees[registry_path])
        if isinstance(node, ast.Name)
    }
    findings = []
    for cls, (rel_path, lineno) in sorted(_scheme_classes(trees).items()):
        if cls not in registered:
            findings.append(
                Diagnostic(
                    "L004",
                    SEVERITY_ERROR,
                    f"MappingScheme subclass {cls} is not registered in "
                    "core/registry.py — it is invisible to "
                    "available_schemes() and the differential suite",
                    location=f"{rel_path}:{lineno}",
                )
            )
    return findings


def lint_paths(paths: list[Path], root: Path | None = None) -> list[Diagnostic]:
    """Lint every ``.py`` file under *paths*; returns all findings."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    if root is None:
        root = Path.cwd()
    findings: list[Diagnostic] = []
    trees: dict[str, ast.AST] = {}
    pragmas_by_file: dict[str, dict[int, frozenset[str]]] = {}
    for file in files:
        rel_path = _relative(file, root)
        text = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text)
        except SyntaxError as error:
            findings.append(
                Diagnostic(
                    "L000",
                    SEVERITY_ERROR,
                    f"file does not parse: {error.msg}",
                    location=f"{rel_path}:{error.lineno or 0}",
                )
            )
            continue
        trees[rel_path] = tree
        pragmas_by_file[rel_path] = collect_pragmas(text)
        linter = _FileLinter(rel_path, tree)
        linter.visit(tree)
        findings.extend(linter.findings)
    findings.extend(_check_registry(trees))
    return _apply_pragmas(findings, pragmas_by_file)


def _apply_pragmas(
    findings: list[Diagnostic],
    pragmas_by_file: dict[str, dict[int, frozenset[str]]],
) -> list[Diagnostic]:
    """Drop findings a ``# lint: allow(...)`` pragma covers."""
    kept = []
    for diagnostic in findings:
        rel_path, _, line = diagnostic.location.rpartition(":")
        pragmas = pragmas_by_file.get(rel_path)
        if (
            pragmas
            and line.isdigit()
            and is_suppressed(pragmas, int(line), diagnostic.code)
        ):
            continue
        kept.append(diagnostic)
    return kept


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    json_path = None
    if "--json" in argv:
        at = argv.index("--json")
        try:
            json_path = argv[at + 1]
        except IndexError:
            print("xmlrel-lint: --json requires a path", file=sys.stderr)
            return 2
        del argv[at:at + 2]
    if argv:
        paths = [Path(arg) for arg in argv]
        root = Path.cwd()
    else:
        # Default: the repro package itself.
        package_dir = Path(__file__).resolve().parent.parent
        paths = [package_dir]
        root = package_dir.parent
    findings = lint_paths(paths, root=root)
    if json_path:
        Path(json_path).write_text(
            json.dumps(
                {
                    "findings": [d.to_dict() for d in findings],
                    "count": len(findings),
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
    if findings:
        print(format_diagnostics(findings))
        print(f"xmlrel-lint: {len(findings)} finding(s)")
        return 1
    print("xmlrel-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
