"""Static analysis: SQL plan linting, XPath pruning, repo invariants.

Three analyzers share one :class:`~repro.analysis.diagnostics.Diagnostic`
record type:

* :mod:`repro.analysis.sqllint` — walks the typed SQL AST of a
  translated statement against the live schema catalog and reports
  unresolvable tables/columns, disconnected join graphs, missing
  document predicates, base-case-less recursive CTEs, and unindexed
  join columns;
* :mod:`repro.analysis.xpathlint` — decides XPath satisfiability
  against a DTD or path summary (provably-empty queries short-circuit
  with zero SQL statements) and expands ``//`` descendant steps into
  explicit child chains when the content model is non-recursive;
* :mod:`repro.analysis.lint` — ``xmlrel-lint``, the Python-AST repo
  linter enforcing project invariants (run as
  ``python -m repro.analysis.lint``);
* :mod:`repro.analysis.concurrency` — ``xmlrel-concurrency``, the
  static lock-discipline analyzer (rules C001–C005) built around the
  canonical lock order :data:`~repro.analysis.concurrency.LOCK_ORDER`
  (run as ``python -m repro.analysis.concurrency``); its runtime
  companion :mod:`repro.analysis.lockharness` polices the same order
  on live locks under the test suites.

:mod:`repro.analysis.sweep` lints the full benchmark query corpus across
every registered scheme (the CI gate; run as
``python -m repro.analysis.sweep``).
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    SEVERITY_ADVICE,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    format_diagnostics,
    has_errors,
)
from repro.analysis.sqllint import lint_statement
from repro.analysis.xpathlint import XPathAnalyzer

__all__ = [
    "Diagnostic",
    "LOCK_ORDER",
    "SEVERITY_ADVICE",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "XPathAnalyzer",
    "format_diagnostics",
    "has_errors",
    "lint_concurrency",
    "lint_statement",
]


def __getattr__(name):
    # Lazy: importing the concurrency analyzer at package-import time
    # would trip runpy's double-import warning under
    # ``python -m repro.analysis.concurrency``.
    if name in ("LOCK_ORDER", "lint_concurrency"):
        from repro.analysis import concurrency

        return getattr(concurrency, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
