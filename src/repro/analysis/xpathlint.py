"""XPath static analysis: satisfiability and ``//`` expansion.

Given a DTD (:mod:`repro.xml.dtd` content models) or a
:class:`~repro.stats.pathsummary.PathSummary`, an :class:`XPathAnalyzer`
answers two questions about a query *before* any SQL is generated:

**Satisfiability** — can the path match anything at all?  A DTD bounds
which child/attribute names each element may carry, so
``/bib/nonexistent/title`` is provably empty on any conforming document;
a path summary records which label paths actually occur, so it prunes
instance-level misses too.  :meth:`XPathAnalyzer.satisfiable` returns
``False`` only for *provable* emptiness (the decidable direction) and
``None`` otherwise — a DTD can never promise a node exists (every
particle may be optional), and text/extended-axis steps stay unknown
because the non-validating parser stores whitespace text even where a
children model allows none.  Provably-empty queries short-circuit in
:meth:`~repro.query.translator.BaseTranslator.query_pres` with zero SQL
statements executed (diagnostic ``X001``).

**Descendant expansion** — when the DTD's child graph is non-recursive,
a ``//`` step has finitely many concrete child chains, so ``//author``
on the dblp DTD rewrites into ``/dblp/article/author |
/dblp/book/author | ...`` (diagnostic ``X002``, the classic *path
minimization* of DTD-aware query processing).  Each chain translates as
an ordinary child path — no recursive CTE, no region self-join fanout —
and the arms run through the translator's existing union machinery
(sorted distinct merge ≡ XPath union semantics).  Expansion is refused
(returns ``None``) whenever it cannot be exact: recursive or open
content models (undeclared element references, ANY is fine), wildcard
steps, non-child axes, or more than :data:`MAX_EXPANSION_ARMS` chains.

Both answers trust the schema they were given: satisfiability verdicts
hold for documents that *conform* to the DTD (or for the document the
summary was built from — rebuild or re-attach after updates).  Analysis
is opt-in per store via :meth:`repro.XmlRelStore.enable_analysis`.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    Diagnostic,
    SEVERITY_WARNING,
)
from repro.errors import XmlRelError
from repro.query.plan import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    PathPlan,
    StepPlan,
    plan_path,
)
from repro.stats.pathsummary import PathSummary
from repro.xml.dtd import Dtd
from repro.xpath.ast import (
    AnyKindTest,
    BinaryOp,
    KindTest,
    LocationPath,
    NameTest,
)
from repro.xpath.parser import parse_xpath

#: Refuse a ``//`` expansion that would produce more union arms than
#: this — past a few dozen chains the n-way union stops being a win.
MAX_EXPANSION_ARMS = 24

#: Chains deeper than this are almost certainly a mis-modelled DTD.
MAX_CHAIN_DEPTH = 40

#: Context sentinel: the document node (parent of the root element).
_DOCUMENT = None

#: Child-set sentinel: statically unknown (open) content.
_OPEN = None


class _Bail(Exception):
    """Internal: expansion hit an open/recursive/oversized region."""


def _union_arms(expr):
    """Arms of a top-level ``|`` expression (or the expression itself)."""
    if not (isinstance(expr, BinaryOp) and expr.op == "|"):
        return [expr]
    arms = []
    stack = [expr.left, expr.right]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "|":
            stack.extend((node.left, node.right))
        else:
            arms.append(node)
    return arms


class XPathAnalyzer:
    """Satisfiability and ``//`` expansion over one DTD and/or summary.

    Attach one to a scheme (``scheme.attach_analyzer(analyzer)`` or
    :meth:`repro.XmlRelStore.enable_analysis`) and the translator
    consults it on every query.  Stateless after construction, so one
    analyzer may serve many schemes over the same vocabulary.
    """

    def __init__(
        self,
        dtd: Dtd | None = None,
        summary: PathSummary | None = None,
        expand: bool = False,
    ) -> None:
        if dtd is None and summary is None:
            raise XmlRelError(
                "XPathAnalyzer needs a DTD and/or a path summary"
            )
        self.dtd = dtd
        self.summary = summary
        #: ``//`` expansion needs the closed-world child graph only a
        #: DTD provides (a summary reflects one instance, which updates
        #: could invalidate under cached plans).
        self.expansion_enabled = bool(expand and dtd is not None)
        self._children: dict[str, frozenset[str] | None] = {}
        self._attributes: dict[str, frozenset[str]] = {}
        self._root: str | None = None
        self._closed_world = False
        if dtd is not None:
            self._build_dtd_graph(dtd)

    @classmethod
    def from_dtd(cls, dtd: Dtd, expand: bool = False) -> "XPathAnalyzer":
        return cls(dtd=dtd, expand=expand)

    @classmethod
    def from_summary(cls, summary: PathSummary) -> "XPathAnalyzer":
        return cls(summary=summary)

    def _build_dtd_graph(self, dtd: Dtd) -> None:
        declared = frozenset(dtd.elements)
        for name, decl in dtd.elements.items():
            model = decl.model
            if model.is_empty:
                self._children[name] = frozenset()
            elif model.is_any:
                # ANY admits any *declared* element (XML spec), so the
                # world stays closed.
                self._children[name] = declared
            elif model.is_mixed:
                self._children[name] = frozenset(model.mixed_names)
            else:
                self._children[name] = frozenset(model.element_names())
        # Referenced-but-undeclared elements have unknown content.
        for name in dtd.undeclared_references():
            self._children[name] = _OPEN
        for name in self._children:
            self._attributes[name] = frozenset(
                attr.name for attr in dtd.attributes_of(name)
            )
        self._root = dtd.root_name
        self._closed_world = not dtd.undeclared_references()

    # -- satisfiability -------------------------------------------------------

    def satisfiable(self, xpath) -> bool | None:
        """``False`` when *xpath* is provably empty, else ``None``.

        Accepts strings (unions included), parsed location paths, or
        :class:`~repro.query.plan.PathPlan` objects.  Anything the
        planner rejects — or any step outside the decidable child /
        attribute fragment — yields ``None`` (no claim).  Never raises.
        """
        try:
            plans = self._plans_of(xpath)
        except XmlRelError:
            return None
        if not plans:
            return None
        if all(self._plan_satisfiable(plan) is False for plan in plans):
            return False
        return None

    def diagnose(self, xpath) -> tuple[Diagnostic, ...]:
        """Diagnostics for *xpath* (currently: ``X001`` when provably
        empty) — the reporting face of :meth:`satisfiable`."""
        if self.satisfiable(xpath) is False:
            source = "path summary" if self.dtd is None else "DTD"
            return (
                Diagnostic(
                    "X001",
                    SEVERITY_WARNING,
                    f"path is unsatisfiable under the {source}: no "
                    "conforming document can contain a match",
                    location=str(xpath),
                ),
            )
        return ()

    def _plans_of(self, xpath) -> list[PathPlan]:
        if isinstance(xpath, PathPlan):
            return [xpath]
        expr = parse_xpath(xpath) if isinstance(xpath, str) else xpath
        plans = []
        for arm in _union_arms(expr):
            if not isinstance(arm, LocationPath):
                raise XmlRelError(f"not a location path: {arm}")
            plans.append(plan_path(arm))
        return plans

    def _plan_satisfiable(self, plan: PathPlan) -> bool | None:
        if self.dtd is not None and self._dtd_satisfiable(plan) is False:
            return False
        if (
            self.summary is not None
            and self._summary_satisfiable(plan) is False
        ):
            return False
        return None

    # -- DTD-based satisfiability walk ---------------------------------------

    def _children_of(self, context) -> frozenset[str] | None:
        """Possible child-element names of a context set (or ``_OPEN``)."""
        if context is _DOCUMENT:
            return frozenset({self._root}) if self._root else _OPEN
        result: set[str] = set()
        for name in context:
            kids = self._children.get(name, _OPEN)
            if kids is _OPEN:
                return _OPEN
            result.update(kids)
        return frozenset(result)

    def _descendants_of(self, context) -> frozenset[str] | None:
        """Closure of :meth:`_children_of` (elements reachable by ≥ 1
        child edge); ``_OPEN`` as soon as any content is unknown."""
        frontier = self._children_of(context)
        if frontier is _OPEN:
            return _OPEN
        seen: set[str] = set()
        while frontier:
            seen.update(frontier)
            next_frontier: set[str] = set()
            for name in frontier:
                kids = self._children.get(name, _OPEN)
                if kids is _OPEN:
                    return _OPEN
                next_frontier.update(kids - seen)
            frontier = frozenset(next_frontier)
        return frozenset(seen)

    def _dtd_satisfiable(self, plan: PathPlan) -> bool | None:
        context = _DOCUMENT  # the document node; elements flow from here
        steps = plan.steps
        for index, step in enumerate(steps):
            is_last = index == len(steps) - 1
            if step.axis == AXIS_ATTRIBUTE:
                if not is_last:
                    # Attribute nodes have no children or attributes:
                    # any further child/attribute step is empty
                    # regardless of the DTD.
                    following = steps[index + 1]
                    if following.axis in (AXIS_CHILD, AXIS_ATTRIBUTE):
                        return False
                    return None
                return self._attribute_satisfiable(context, step)
            if step.axis != AXIS_CHILD:
                return None  # self/parent/extended axes: no claim
            pool = (
                self._descendants_of(context)
                if step.from_descendant
                else self._children_of(context)
            )
            if pool is _OPEN:
                return None
            if isinstance(step.test, NameTest):
                if step.test.is_wildcard:
                    context = pool
                elif step.test.name in pool:
                    context = frozenset({step.test.name})
                else:
                    return False
            elif isinstance(step.test, KindTest):
                # text()/comment()/pi(): stored regardless of the
                # children model (non-validating parser), so only the
                # *element* path up to here was checkable.
                return None
            elif isinstance(step.test, AnyKindTest):
                # node() matches elements and text alike; further
                # structural steps only continue through elements.
                if is_last:
                    return None
                context = pool
            else:
                return None
            if not context:
                return False  # wildcard over an empty pool
        return None

    def _attribute_satisfiable(self, context, step: StepPlan):
        pool = (
            self._descendants_of(context)
            if step.from_descendant
            else _context_or_children(self, context)
        )
        if pool is _OPEN:
            return None
        if not isinstance(step.test, NameTest):
            return None
        for element in pool:
            if element not in self.dtd.elements:
                return None  # undeclared: attribute set unknown
            declared = self._attributes.get(element, frozenset())
            if step.test.is_wildcard:
                if declared:
                    return None
            elif step.test.name in declared:
                return None
        return False

    # -- summary-based satisfiability ----------------------------------------

    def _summary_pattern(
        self, plan: PathPlan
    ) -> list[tuple[str, bool]] | None:
        """The ``PathSummary.matching`` pattern for *plan* (None when a
        step has no label-pattern equivalent)."""
        pattern: list[tuple[str, bool]] = []
        for step in plan.steps:
            if step.axis == AXIS_CHILD:
                if isinstance(step.test, NameTest):
                    label = "*" if step.test.is_wildcard else step.test.name
                elif (
                    isinstance(step.test, KindTest)
                    and step.test.kind == "text"
                ):
                    label = "#text"
                else:
                    return None
            elif step.axis == AXIS_ATTRIBUTE and isinstance(
                step.test, NameTest
            ):
                label = (
                    "@*" if step.test.is_wildcard
                    else f"@{step.test.name}"
                )
            else:
                return None
            pattern.append((label, step.from_descendant))
        return pattern

    def _summary_satisfiable(self, plan: PathPlan) -> bool | None:
        pattern = self._summary_pattern(plan)
        if pattern is None:
            return None
        if not self.summary.matching(pattern):
            return False
        return None

    # -- // expansion ---------------------------------------------------------

    def expand(self, xpath) -> list[PathPlan] | None:
        """Concrete child-chain plans replacing the ``//`` steps of
        *xpath*, or ``None`` when exact expansion is impossible.

        Only fires for a single absolute path whose steps are named
        child steps (a trailing non-descendant attribute step is fine)
        with at least one ``//``, over a closed non-recursive DTD.  The
        returned plans carry the original predicates on their final
        steps and are executed as union arms.
        """
        if not self.expansion_enabled or not self._closed_world:
            return None
        try:
            plans = self._plans_of(xpath)
        except XmlRelError:
            return None
        if len(plans) != 1:
            return None
        plan = plans[0]
        if not any(step.from_descendant for step in plan.steps):
            return None
        for index, step in enumerate(plan.steps):
            named = isinstance(step.test, NameTest) and not (
                step.test.is_wildcard
            )
            if step.axis == AXIS_CHILD and named:
                continue
            if (
                step.axis == AXIS_ATTRIBUTE
                and named
                and index == len(plan.steps) - 1
                and not step.from_descendant
            ):
                continue
            return None
        try:
            chains = self._expand_steps(plan.steps)
        except _Bail:
            return None
        if not chains or len(chains) > MAX_EXPANSION_ARMS:
            return None
        return [
            PathPlan(chain, source=f"{plan.source or xpath}#expand{i}")
            for i, chain in enumerate(chains)
        ]

    def expansion_diagnostics(
        self, xpath, expanded: list[PathPlan]
    ) -> tuple[Diagnostic, ...]:
        """The ``X002`` record documenting an applied expansion."""
        return (
            Diagnostic(
                "X002",
                "advice",
                f"'//' expanded into {len(expanded)} explicit child "
                "chain(s) under the non-recursive DTD",
                location=str(xpath),
            ),
        )

    def _expand_steps(
        self, steps: tuple[StepPlan, ...]
    ) -> list[tuple[StepPlan, ...]]:
        """All concrete rewrites of *steps*; raises :class:`_Bail` on
        open/recursive models or combinatorial blowup."""
        # Each partial: (steps so far, current element name or _DOCUMENT)
        partials: list[tuple[tuple[StepPlan, ...], str | None]] = [
            ((), _DOCUMENT)
        ]
        for step in steps:
            grown: list[tuple[tuple[StepPlan, ...], str | None]] = []
            for prefix, state in partials:
                if step.axis == AXIS_ATTRIBUTE:
                    grown.append((prefix + (step,), state))
                    continue
                target = step.test.name
                if not step.from_descendant:
                    kids = self._children_of(
                        _DOCUMENT if state is _DOCUMENT
                        else frozenset({state})
                    )
                    if kids is _OPEN:
                        raise _Bail
                    if target in kids:
                        grown.append((prefix + (step,), target))
                    continue
                for chain in self._chains_to(state, target):
                    rewritten = tuple(
                        StepPlan(AXIS_CHILD, NameTest(name))
                        for name in chain[:-1]
                    ) + (
                        StepPlan(
                            AXIS_CHILD,
                            step.test,
                            step.predicates,
                            from_descendant=False,
                        ),
                    )
                    grown.append((prefix + rewritten, target))
            if len(grown) > MAX_EXPANSION_ARMS:
                raise _Bail
            partials = grown
        return [prefix for prefix, _state in partials]

    def _chains_to(
        self, state: str | None, target: str
    ) -> list[tuple[str, ...]]:
        """Every child-edge chain from *state* to *target* (inclusive),
        shortest-first; raises :class:`_Bail` on cycles along the way."""
        reaches = self._co_reachable(target)
        if target in reaches:
            # The target sits below itself (recursive model): the chain
            # set is infinite, no exact finite rewrite exists.
            raise _Bail
        chains: list[tuple[str, ...]] = []

        def descend(node, path: tuple[str, ...], on_stack: frozenset):
            if len(path) > MAX_CHAIN_DEPTH or len(chains) > (
                MAX_EXPANSION_ARMS
            ):
                raise _Bail
            kids = self._children_of(
                _DOCUMENT if node is _DOCUMENT else frozenset({node})
            )
            if kids is _OPEN:
                raise _Bail
            for kid in sorted(kids):
                if kid == target:
                    chains.append(path + (kid,))
                    # In an acyclic graph the target cannot also sit
                    # below itself; nothing deeper to find here.
                    continue
                if kid not in reaches:
                    continue
                if kid in on_stack:
                    raise _Bail  # cycle on a target-reaching path
                descend(kid, path + (kid,), on_stack | {kid})

        descend(state, (), frozenset())
        return sorted(chains, key=len)

    def _co_reachable(self, target: str) -> frozenset[str]:
        """Elements from which *target* is reachable via child edges."""
        parents: dict[str, set[str]] = {}
        for element, kids in self._children.items():
            for kid in kids or ():
                parents.setdefault(kid, set()).add(element)
        seen: set[str] = set()
        frontier = [target]
        while frontier:
            current = frontier.pop()
            for parent in parents.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return frozenset(seen)


def _context_or_children(analyzer: XPathAnalyzer, context):
    """For a plain attribute step the attribute hangs off the *context*
    elements themselves (document context has none)."""
    if context is _DOCUMENT:
        return frozenset()
    return context
