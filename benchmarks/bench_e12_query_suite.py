"""E12 (Table 6) — the end-to-end query suite (Q1–Q16) per scheme.

Every auction query runs against every scheme; schemes that cannot
translate a query report "unsupported" rather than a number.  The table
records latency per query per scheme plus per-scheme coverage.

Expected shape — the tutorial's closing thesis that *no mapping wins
everywhere*: interval leads on structure-heavy queries, inlining on
schema-conforming paths, binary on label-selective lookups; universal
and xrel cannot express the positional queries; the edge table is never
the best and worst on deep paths.
"""

import pytest

from repro.bench import ExperimentResult, write_report
from repro.core.compare import compare_schemes
from repro.workloads import AUCTION_QUERIES, auction_dtd

from benchmarks.conftest import SCHEMES


@pytest.fixture(scope="module")
def suite_results(auction_document):
    return compare_schemes(
        auction_document,
        [spec.xpath for spec in AUCTION_QUERIES],
        schemes=list(SCHEMES),
        scheme_kwargs={"inlining": {"dtd": auction_dtd()}},
        repetitions=3,
    )


def test_e12_report(benchmark, suite_results):
    result = ExperimentResult(
        experiment="E12",
        title="End-to-end query suite Q1-Q16 (ms; '—' = unsupported)",
        workload="auction sf=0.1, the full canonical query set",
        expectation=(
            "no overall winner; interval strong on structure, binary on "
            "label-selective paths, inlining on DTD paths; positional "
            "queries unsupported by universal/xrel"
        ),
    )
    for spec in AUCTION_QUERIES:
        row = result.add_row(f"{spec.key} ({spec.category})")
        for scheme_name in SCHEMES:
            outcome = suite_results[scheme_name].outcomes[spec.xpath]
            row.set(
                scheme_name,
                outcome.seconds * 1000 if outcome.supported else None,
            )
    coverage = result.add_row("supported")
    wins = result.add_row("fastest on")
    win_counts = {name: 0 for name in SCHEMES}
    for spec in AUCTION_QUERIES:
        supported = {
            name: suite_results[name].outcomes[spec.xpath]
            for name in SCHEMES
            if suite_results[name].outcomes[spec.xpath].supported
        }
        best = min(supported, key=lambda name: supported[name].seconds)
        win_counts[best] += 1
    for name in SCHEMES:
        coverage.set(name, suite_results[name].supported_queries())
        wins.set(name, win_counts[name])
    write_report(result)
    benchmark(lambda: None)

    # Coverage facts.
    for name in ("edge", "binary", "interval", "dewey", "inlining"):
        assert suite_results[name].supported_queries() == len(
            AUCTION_QUERIES
        ), name
    for name in ("universal", "xrel"):
        unsupported = [
            q for q, o in suite_results[name].outcomes.items()
            if not o.supported
        ]
        assert unsupported, name  # the positional queries at least

    # Win counts are wall-clock and hence machine/noise dependent: they
    # are reported, not asserted (EXPERIMENTS.md records the measured
    # distribution).  One stable fact: every query has exactly one winner.
    assert sum(win_counts.values()) == len(AUCTION_QUERIES)


def test_e12_all_schemes_agree(benchmark, suite_results):
    """compare_schemes already raises on disagreement; make the check
    explicit and countable here."""
    def count_agreements():
        agreements = 0
        for spec in AUCTION_QUERIES:
            answers = {
                comparison.outcomes[spec.xpath].pres
                for comparison in suite_results.values()
                if comparison.outcomes[spec.xpath].supported
            }
            assert len(answers) == 1, spec.key
            agreements += 1
        return agreements

    assert benchmark.pedantic(
        count_agreements, rounds=1, iterations=1
    ) == len(AUCTION_QUERIES)
