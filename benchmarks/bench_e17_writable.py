"""E17 — writable shards: read latency under write/rebalance load.

Measures what the writable serving layer costs its readers:

* **baseline** — 4 reader threads issuing doc-scoped queries against a
  quiescent 4-shard store: read p50/p99 with nothing else running.
* **under write + rebalance load** — the same readers while one
  background writer continuously inserts/deletes subtrees and
  periodically rebalances a document to another shard.  Per-shard
  writer locks mean readers never block on writes (WAL snapshots keep
  them consistent); the p99 gap quantifies the interference that
  remains (page-cache churn, plan-epoch re-translation on
  data-dependent schemes).
* **replica reads + staleness bounds** — replicas shipped mid-run:
  replica-served p50/p99, the staleness bound (writes behind) before
  and after a re-ship, and the fallback behaviour.

Ends with a full cross-shard integrity audit — the store must come out
of the hammering verifiably intact.  Writes the machine-readable
``benchmarks/results/BENCH_PR6.json`` consumed by the CI fault-matrix
job.
"""

import json
import os
import threading
import time

from repro.bench import ExperimentResult, write_report
from repro.errors import DocumentNotFoundError
from repro.obs.metrics import Histogram
from repro.serve import ShardedStore
from repro.workloads import generate_auction
from repro.xml import parse_fragment

from benchmarks.conftest import SEED

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR6.json"
)

SCHEME = "interval"
SHARDS = 4
REPLICAS = 1
DOCUMENTS = 8
READER_THREADS = 4
QUERIES_PER_THREAD = 30
#: Write cycles in the loaded phase (each: insert + delete, every 4th
#: also a rebalance).  Readers loop until the writer finishes, so the
#: two phases genuinely overlap.
WRITE_CYCLES = 8
MAX_LOADED_QUERIES_PER_THREAD = 500

DOC_QUERIES = (
    "/site/people/person/name",
    "/site/open_auctions/open_auction/bidder/increase",
    "//item/name",
)

FRAGMENT = "<person><name>Load Test</name></person>"


def _load_store(directory):
    document = generate_auction(0.05, seed=SEED)
    store = ShardedStore.open(
        directory,
        scheme=SCHEME,
        shards=SHARDS,
        replicas=REPLICAS,
        placement="round_robin",
        pool_size=8,
        max_in_flight=64,
    )
    doc_ids = store.store_many(
        [document] * DOCUMENTS,
        names=[f"auction-{i}" for i in range(DOCUMENTS)],
    )
    return store, doc_ids


def _read_phase(store, doc_ids, histogram, read_from=None, until=None):
    """4 reader threads, latency per query into *histogram*.

    With *until* (an Event) readers loop until it is set instead of
    stopping after a fixed count, so they stay active for as long as a
    background writer runs.  Returns the count of reads that raced a
    concurrent rebalance (resolved a document the instant it moved) —
    tolerated, counted, never silent.
    """
    barrier = threading.Barrier(READER_THREADS)
    errors = []
    races = [0] * READER_THREADS

    def reader(index):
        try:
            barrier.wait()
            limit = (
                MAX_LOADED_QUERIES_PER_THREAD
                if until is not None
                else QUERIES_PER_THREAD
            )
            for i in range(limit):
                if until is not None and until.is_set():
                    break
                doc_id = doc_ids[(index + i) % len(doc_ids)]
                xpath = DOC_QUERIES[i % len(DOC_QUERIES)]
                started = time.perf_counter()
                try:
                    store.query_pres(doc_id, xpath, read_from=read_from)
                except DocumentNotFoundError:
                    races[index] += 1
                    continue
                histogram.observe(
                    (time.perf_counter() - started) * 1000.0
                )
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=reader, args=(index,))
        for index in range(READER_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return sum(races)


def _write_loop(store, doc_ids, done, stats):
    """A fixed budget of subtree churn + periodic rebalances; sets
    *done* when the budget is spent (readers loop until then)."""
    try:
        for cycle in range(WRITE_CYCLES):
            doc_id = doc_ids[cycle % len(doc_ids)]
            try:
                parent = store.query_pres(doc_id, "/site/people")[0]
                store.insert_subtree(
                    doc_id, parent, parse_fragment(FRAGMENT), index=0
                )
                stats["inserts"] += 1
                victim = store.query_pres(
                    doc_id, "/site/people/person"
                )[0]
                store.delete_subtree(doc_id, victim)
                stats["deletes"] += 1
                if cycle % 4 == 3:
                    target = (store.resolve(doc_id).shard + 1) % SHARDS
                    store.rebalance(doc_id, target)
                    stats["rebalances"] += 1
            except DocumentNotFoundError:
                stats["races"] += 1
    finally:
        done.set()


def _summarize(histogram):
    return {
        "count": histogram.count,
        "p50_ms": histogram.percentile(50),
        "p99_ms": histogram.percentile(99),
        "max_ms": histogram.max,
    }


def test_e17_writable(tmp_path):
    store, doc_ids = _load_store(str(tmp_path))
    baseline = Histogram("read.baseline")
    under_load = Histogram("read.under_load")
    replica_reads = Histogram("read.replica")
    with store:
        for doc_id in doc_ids:  # warm pools and plan caches
            store.query_pres(doc_id, DOC_QUERIES[0])

        # Phase 1: quiescent baseline.
        _read_phase(store, doc_ids, baseline)

        # Phase 2: the same read workload while a background writer
        # spends its churn budget (inserts, deletes, rebalances).
        done = threading.Event()
        write_stats = {
            "inserts": 0, "deletes": 0, "rebalances": 0, "races": 0,
        }
        writer = threading.Thread(
            target=_write_loop, args=(store, doc_ids, done, write_stats)
        )
        writer.start()
        try:
            read_races = _read_phase(
                store, doc_ids, under_load, until=done
            )
        finally:
            done.set()
            writer.join()

        # Phase 3: ship replicas, read from them, and bound staleness.
        store.ship_replicas()
        _read_phase(store, doc_ids, replica_reads, read_from="replica")
        # Writes the replicas have not seen widen the bound...
        parent = store.query_pres(doc_ids[0], "/site/people")[0]
        store.insert_subtree(
            doc_ids[0], parent, parse_fragment(FRAGMENT), index=0
        )
        home = store.resolve(doc_ids[0]).shard
        lag_before, _ = store.replica_staleness()[home][0]
        # ...and a re-ship closes it.
        store.ship_replicas(home)
        lag_after, _ = store.replica_staleness()[home][0]

        # The store must come out of the hammering verifiably intact.
        audits = store.verify_all()
        audit_ok = all(
            report.ok
            for reports in audits.values()
            for report in reports
        )
        audited_docs = sum(
            1
            for reports in audits.values()
            for report in reports
            if report.doc_id != -1
        )
        shard_counts = store.shard_counts()

    result = ExperimentResult(
        experiment="E17",
        title="Writable shards: reads under write/rebalance load",
        workload=(
            f"auction sf=0.05 x{DOCUMENTS} docs; {SHARDS}-shard "
            f"{SCHEME} store, {REPLICAS} replica/shard; "
            f"{READER_THREADS} readers x {QUERIES_PER_THREAD} queries "
            f"vs 1 background writer"
        ),
        expectation=(
            "reads keep flowing while subtrees churn and documents "
            "move between shards; replica reads carry an explicit "
            "staleness bound; the final audit is clean"
        ),
    )
    for label, histogram in (
        ("baseline", baseline),
        ("under write+rebalance", under_load),
        ("replica reads", replica_reads),
    ):
        summary = _summarize(histogram)
        result.add_row(
            label,
            p50_ms=summary["p50_ms"],
            p99_ms=summary["p99_ms"],
            reads=summary["count"],
        )
    result.add_row(
        "writer ops",
        inserts=write_stats["inserts"],
        deletes=write_stats["deletes"],
        rebalances=write_stats["rebalances"],
    )
    write_report(result)

    payload = {
        "experiment": "E17",
        "cpu_count": os.cpu_count(),
        "scheme": SCHEME,
        "shards": SHARDS,
        "replicas": REPLICAS,
        "documents": DOCUMENTS,
        "reader_threads": READER_THREADS,
        "queries_per_thread": QUERIES_PER_THREAD,
        "read_latency": {
            "baseline": _summarize(baseline),
            "under_write_rebalance": _summarize(under_load),
            "replica": _summarize(replica_reads),
        },
        "write_load": dict(write_stats),
        "read_races": read_races,
        "replica_staleness": {
            "lag_writes_before_reship": lag_before,
            "lag_writes_after_reship": lag_after,
        },
        "final_audit": {
            "ok": audit_ok,
            "documents_audited": audited_docs,
            "shard_counts": {
                str(shard): count
                for shard, count in shard_counts.items()
            },
        },
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # Acceptance: reads flowed in every phase, writes really ran
    # concurrently, the staleness bound visibly closed, and every shard
    # audits clean after the dust settles.
    assert baseline.count > 0
    assert under_load.count > 0
    assert replica_reads.count > 0
    assert write_stats["inserts"] == WRITE_CYCLES
    assert write_stats["deletes"] == WRITE_CYCLES
    assert write_stats["rebalances"] >= 1
    assert lag_before >= 1
    assert lag_after == 0
    assert audit_ok
    assert sum(shard_counts.values()) == DOCUMENTS
