"""E3 (Figure 1) — simple path query latency vs. path depth.

The query set walks one spine of the auction document at depths 2–5.
Expected shape: the edge/binary/interval mappings pay one join per step
(latency grows with depth); the universal table answers every linear
path with zero joins (flat); inlining flattens the inlined hops.
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report

from benchmarks.conftest import SCHEMES

DEPTH_QUERIES = {
    2: "/site/open_auctions",
    3: "/site/open_auctions/open_auction",
    4: "/site/open_auctions/open_auction/bidder",
    5: "/site/open_auctions/open_auction/bidder/increase",
}


@pytest.mark.benchmark(group="e3-path-depth", max_time=0.5, min_rounds=3)
@pytest.mark.parametrize("depth", sorted(DEPTH_QUERIES))
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_e3_depth_latency(benchmark, auction_stores, scheme_name, depth):
    scheme, doc_id = auction_stores[scheme_name]
    query = DEPTH_QUERIES[depth]
    result = benchmark(scheme.query_pres, doc_id, query)
    assert isinstance(result, list)


def test_e3_report(benchmark, auction_stores):
    result = ExperimentResult(
        experiment="E3",
        title="Path query latency vs depth (ms)",
        workload="auction sf=0.1, one spine at depths 2-5",
        expectation=(
            "join-per-step mappings grow with depth; universal stays "
            "flat (zero joins for linear paths)"
        ),
    )
    answers = {}
    for scheme_name in SCHEMES:
        scheme, doc_id = auction_stores[scheme_name]
        row = result.add_row(scheme_name)
        for depth, query in DEPTH_QUERIES.items():
            seconds = time_call(
                lambda s=scheme, q=query, d=doc_id: s.query_pres(d, q),
                repetitions=5,
            )
            row.set(f"depth={depth}", seconds * 1000)
            answers.setdefault((depth, "count"), len(
                scheme.query_pres(doc_id, query)
            ))
    write_report(result)
    benchmark(lambda: None)

    # Correctness side-check: all schemes agreed on result sizes per
    # depth (full agreement is covered by the test suite).
    for scheme_name in SCHEMES:
        scheme, doc_id = auction_stores[scheme_name]
        for depth, query in DEPTH_QUERIES.items():
            assert len(scheme.query_pres(doc_id, query)) == answers[
                (depth, "count")
            ]
