"""E6 (Table 3) — subtree reconstruction (publishing) time vs size.

Reconstruction targets of increasing size: one person, one open auction,
the regions subtree, and the whole document.  Expected shape: the
interval and dewey mappings fetch a subtree with one index range scan
(pre window / label prefix), while edge and binary must chase parent
pointers through a recursive query — the gap widens with subtree size.
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report
from repro.xpath import evaluate_nodes

from benchmarks.conftest import SCHEMES

TARGETS = [
    ("person", "/site/people/person[1]"),
    ("auction", "/site/open_auctions/open_auction[1]"),
    ("regions", "/site/regions"),
    ("document", "/site"),
]


@pytest.fixture(scope="module")
def target_pres(auction_document):
    auction_document.assign_order()
    return {
        label: evaluate_nodes(auction_document, query)[0].order_key
        for label, query in TARGETS
    }


@pytest.mark.benchmark(group="e6-reconstruct", max_time=0.5, min_rounds=3)
@pytest.mark.parametrize("target", [label for label, __ in TARGETS])
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_e6_reconstruct(
    benchmark, auction_stores, target_pres, scheme_name, target
):
    scheme, doc_id = auction_stores[scheme_name]
    node = benchmark(
        scheme.reconstruct_subtree, doc_id, target_pres[target]
    )
    assert node is not None


def test_e6_report(benchmark, auction_stores, target_pres):
    result = ExperimentResult(
        experiment="E6",
        title="Subtree reconstruction time (ms)",
        workload="auction sf=0.1; person < auction < regions < document",
        expectation=(
            "interval/dewey: one range scan, flat-ish; edge/binary: "
            "recursive parent chasing, growing with subtree size"
        ),
    )
    measured = {}
    for scheme_name in SCHEMES:
        scheme, doc_id = auction_stores[scheme_name]
        row = result.add_row(scheme_name)
        for label, __ in TARGETS:
            seconds = time_call(
                lambda s=scheme, d=doc_id, p=target_pres[label]:
                s.reconstruct_subtree(d, p),
                repetitions=3,
            )
            measured[(scheme_name, label)] = seconds
            row.set(label, seconds * 1000)
    write_report(result)
    benchmark(lambda: None)

    # On the big subtree, recursive chasing loses to the range scan.
    assert measured[("edge", "regions")] > measured[
        ("interval", "regions")
    ]
    assert measured[("binary", "regions")] > measured[
        ("interval", "regions")
    ]
