"""E1 (Table 1) — database size per scheme vs. document scale.

Three metrics per scheme and scale factor:

* logical bytes (sum of value lengths — pure data demand),
* cell slots (rows × columns — the width/denormalization measure a
  fixed-layout RDBMS pays for; this is where the universal table's
  "mostly NULL" explosion shows),
* physical sqlite file bytes (engine ground truth).

Expected shape: universal's *slots* dwarf every other scheme and grow
fastest; dewey pays per-node label strings; inlining is smallest on all
metrics (schema columns replace per-node bookkeeping).  Note the honest
engine deviation recorded in EXPERIMENTS.md: sqlite stores NULL cells in
~1 byte, so universal's *byte* sizes stay competitive here even though
its slot count explodes — on the fixed-layout engines of the period the
slot count was the byte count.
"""

import pytest

from repro.bench import ExperimentResult, write_report
from repro.core.registry import create_scheme
from repro.relational.database import Database

from benchmarks.conftest import SCALE_SWEEP, SCHEMES, scheme_kwargs


def _measure(name, document):
    with Database() as db:
        scheme = create_scheme(name, db, **scheme_kwargs(name))
        result = scheme.store(document, "auction")
        # file_bytes runs VACUUM, which refuses to run inside an open
        # transaction — never the case here, but guard so a future
        # harness change degrades the metric instead of the experiment.
        file_bytes = 0 if db.in_transaction else db.file_bytes()
        return {
            "bytes": scheme.storage_bytes(),
            "cells": scheme.storage_cells(),
            "file": file_bytes,
            "rows": result.total_rows,
        }


@pytest.mark.benchmark(group="e1-storage-size", max_time=0.5, min_rounds=1)
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_e1_store_at_base_scale(benchmark, auction_documents, scheme_name):
    document = auction_documents[0.1]
    measured = benchmark(_measure, scheme_name, document)
    assert measured["bytes"] > 0


def test_e1_report(benchmark, auction_documents):
    result = ExperimentResult(
        experiment="E1",
        title="Storage demand per scheme",
        workload=f"auction documents, scale factors {list(SCALE_SWEEP)}",
        expectation=(
            "universal's slot count explodes (wide, mostly-NULL rows); "
            "dewey pays label bytes; inlining smallest everywhere"
        ),
    )
    measured = {}
    small, large = SCALE_SWEEP[0], SCALE_SWEEP[-1]
    for scheme_name in SCHEMES:
        row = result.add_row(scheme_name)
        for sf in (small, large):
            numbers = _measure(scheme_name, auction_documents[sf])
            measured[(scheme_name, sf)] = numbers
            row.set(f"bytes sf={sf}", numbers["bytes"])
            row.set(f"cells sf={sf}", numbers["cells"])
            row.set(f"file sf={sf}", numbers["file"])
    write_report(result)
    benchmark(lambda: None)

    # Shape assertions from the literature.
    assert (
        measured[("universal", large)]["cells"]
        > 3 * measured[("edge", large)]["cells"]
    )
    assert (
        measured[("dewey", large)]["bytes"]
        > measured[("edge", large)]["bytes"]
    )
    assert (
        measured[("inlining", large)]["bytes"]
        < measured[("edge", large)]["bytes"]
    )
    assert (
        measured[("inlining", large)]["cells"]
        < measured[("edge", large)]["cells"]
    )
    # Universal's slot growth outpaces edge's (new labels keep widening
    # every row).
    universal_growth = (
        measured[("universal", large)]["cells"]
        / measured[("universal", small)]["cells"]
    )
    edge_growth = (
        measured[("edge", large)]["cells"]
        / measured[("edge", small)]["cells"]
    )
    assert universal_growth >= edge_growth
