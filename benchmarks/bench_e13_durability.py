"""E13 — load-time cost of the durability profiles.

The seed experiments load under ``bulk_load`` (MEMORY journal, sync
OFF): fastest, but a crash can corrupt the file.  ``durable`` (WAL,
NORMAL) and ``paranoid`` (WAL, FULL) buy increasing crash safety at
increasing fsync cost.  This experiment quantifies that price on a
file-backed store so the other experiments' choice of ``bulk_load``
is a measured decision, not a default.

Expected shape: bulk_load <= durable <= paranoid, with the gap driven
by fsync frequency — small on battery-backed/fast-fsync hardware,
large on spinning disks.  Wall-clock assertions are deliberately
loose; profiles are compared on the same machine in one run.
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report
from repro.core.registry import create_scheme
from repro.relational.database import DURABILITY_PROFILES, Database

from benchmarks.conftest import scheme_kwargs

#: Profiles in increasing durability order.
PROFILES = ("bulk_load", "durable", "paranoid")

#: One fast and one fsync-heavy scheme keep the matrix small.
E13_SCHEMES = ("interval", "binary")


def _store_once(profile, scheme_name, document, tmp_path, tag):
    path = str(tmp_path / f"e13_{profile}_{scheme_name}_{tag}.db")
    with Database(path, profile=profile) as db:
        scheme = create_scheme(scheme_name, db, **scheme_kwargs(scheme_name))
        scheme.store(document, "auction")


@pytest.mark.benchmark(group="e13-durability", max_time=1.0, min_rounds=3)
@pytest.mark.parametrize("profile", PROFILES)
def test_e13_profile_load(benchmark, auction_documents, tmp_path, profile):
    document = auction_documents[0.05]
    counter = iter(range(10**6))
    benchmark(
        lambda: _store_once(
            profile, "interval", document, tmp_path, next(counter)
        )
    )


def test_e13_report(benchmark, auction_documents, tmp_path):
    assert set(PROFILES) == set(DURABILITY_PROFILES)
    result = ExperimentResult(
        experiment="E13",
        title="Load time per durability profile (ms, file-backed)",
        workload="auction document, scale factor 0.05",
        expectation=(
            "bulk_load <= durable <= paranoid; the gap is the price "
            "of fsync-backed crash safety"
        ),
    )
    document = auction_documents[0.05]
    measured = {}
    for profile in PROFILES:
        row = result.add_row(profile)
        for scheme_name in E13_SCHEMES:
            seconds = time_call(
                lambda p=profile, n=scheme_name: _store_once(
                    p, n, document, tmp_path, "report"
                )
            )
            measured[(profile, scheme_name)] = seconds
            row.set(scheme_name, seconds * 1000)
    write_report(result)
    benchmark(lambda: None)

    # Paranoid must not be *faster* than bulk_load by more than noise;
    # anything tighter is hostage to the host's fsync behaviour.
    for scheme_name in E13_SCHEMES:
        assert (
            measured[("paranoid", scheme_name)]
            > 0.25 * measured[("bulk_load", scheme_name)]
        )
