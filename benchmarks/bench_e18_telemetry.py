"""E18 — telemetry overhead and the live ops surface under load.

Two measurements over :class:`~repro.serve.ShardedStore`:

* **telemetry overhead** — the same warm doc-scoped query mix against
  two identically-loaded 4-shard stores, one bare and one carrying the
  full telemetry plane (tracer + windowed metrics + wide-event JSONL
  log + ops endpoint).  Queries are interleaved pair-by-pair so CPU
  frequency scaling and page-cache state hit both stores equally, and
  each side is summarized by its per-query *minimum* — the noise in a
  warm query is strictly additive, so the min is the clean estimate of
  intrinsic cost.  The acceptance gate: full telemetry adds ≤ 5% to
  the aggregate warm doc-scoped latency (best trial of three).
* **ops surface under write load** — the E17 write mix (subtree
  inserts/deletes) churns in the background while readers query; the
  live ``/metrics`` endpoint is scraped mid-load and must parse as
  Prometheus text exposition with windowed per-shard p99 samples, and
  ``/healthz`` must stay green.

Writes the machine-readable ``benchmarks/results/BENCH_PR7.json``
consumed by the CI ops-smoke job.
"""

import json
import os
import threading
import time
import urllib.request

from repro.bench import ExperimentResult, write_report
from repro.obs import RequestLog, Tracer, parse_prometheus
from repro.serve import ShardedStore
from repro.workloads import generate_auction
from repro.xml.parser import parse_fragment

from benchmarks.conftest import SEED

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR7.json"
)

SCHEME = "interval"
SHARDS = 4
DOCUMENTS = 4
#: Paper-scale auction documents: warm doc-scoped queries land in the
#: 1–3 ms range, where the telemetry plane's fixed per-request cost
#: (a few tens of microseconds) must disappear into the noise floor.
SCALE = 1.0

#: Doc-scoped query shapes of the auction workload (same as E16).
DOC_QUERIES = (
    "/site/people/person/name",
    "/site/open_auctions/open_auction/bidder/increase",
    "//item/name",
)

INTERLEAVED_PAIRS = 200
TRIALS = 3
OVERHEAD_BUDGET = 1.05

FRAGMENT = "<person><name>Load Test</name></person>"
WRITE_CYCLES = 30


def _load_store(directory, document, **kwargs):
    store = ShardedStore.open(
        directory,
        scheme=SCHEME,
        shards=SHARDS,
        placement="round_robin",
        pool_size=8,
        max_in_flight=64,
        **kwargs,
    )
    doc_ids = store.store_many(
        [document] * DOCUMENTS,
        names=[f"auction-{i}" for i in range(DOCUMENTS)],
    )
    return store, doc_ids


def _interleaved_minimums(base, base_ids, full, full_ids, xpath):
    """Per-store minimum warm latency over interleaved query pairs."""
    base_min = full_min = float("inf")
    for i in range(INTERLEAVED_PAIRS):
        t0 = time.perf_counter()
        base.query_pres(base_ids[i % DOCUMENTS], xpath)
        t1 = time.perf_counter()
        full.query_pres(full_ids[i % DOCUMENTS], xpath)
        t2 = time.perf_counter()
        base_min = min(base_min, t1 - t0)
        full_min = min(full_min, t2 - t1)
    return base_min, full_min


def _overhead_phase(tmp_path, document):
    base, base_ids = _load_store(os.path.join(tmp_path, "bare"), document)
    tracer = Tracer()
    request_log = RequestLog(
        capacity=4096, path=os.path.join(tmp_path, "events.jsonl")
    )
    full, full_ids = _load_store(
        os.path.join(tmp_path, "telemetry"),
        document,
        tracer=tracer,
        request_log=request_log,
    )
    full.serve_ops()
    try:
        # Warm both stores: plan caches, pool connections, page cache.
        for xpath in DOC_QUERIES:
            for i in range(DOCUMENTS):
                base.query_pres(base_ids[i], xpath)
                full.query_pres(full_ids[i], xpath)

        trials = []
        for _ in range(TRIALS):
            per_query = {}
            for xpath in DOC_QUERIES:
                b, f = _interleaved_minimums(
                    base, base_ids, full, full_ids, xpath
                )
                per_query[xpath] = {
                    "base_us": b * 1e6,
                    "telemetry_us": f * 1e6,
                    "delta_us": (f - b) * 1e6,
                    "ratio": f / b,
                }
            base_total = sum(q["base_us"] for q in per_query.values())
            full_total = sum(
                q["telemetry_us"] for q in per_query.values()
            )
            trials.append({
                "per_query": per_query,
                "aggregate_ratio": full_total / base_total,
                "aggregate_delta_us": full_total - base_total,
            })
        events = full.request_log.stats()
    finally:
        base.close()
        full.close()
    best = min(t["aggregate_ratio"] for t in trials)
    return {
        "trials": trials,
        "best_aggregate_ratio": best,
        "budget_ratio": OVERHEAD_BUDGET,
        "wide_events": events,
    }


def _write_loop(store, doc_ids, done, stats):
    try:
        for cycle in range(WRITE_CYCLES):
            doc_id = doc_ids[cycle % len(doc_ids)]
            parent = store.query_pres(doc_id, "/site/people")[0]
            store.insert_subtree(
                doc_id, parent, parse_fragment(FRAGMENT), index=0
            )
            stats["inserts"] += 1
            victim = store.query_pres(doc_id, "/site/people/person")[0]
            store.delete_subtree(doc_id, victim)
            stats["deletes"] += 1
    finally:
        done.set()


def _scrape(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode()


def _ops_under_write_load(tmp_path, document):
    tracer = Tracer()
    request_log = RequestLog(
        capacity=4096, path=os.path.join(tmp_path, "load-events.jsonl")
    )
    store, doc_ids = _load_store(
        os.path.join(tmp_path, "load"),
        document,
        tracer=tracer,
        request_log=request_log,
    )
    server = store.serve_ops()
    stats = {"inserts": 0, "deletes": 0}
    done = threading.Event()
    writer = threading.Thread(
        target=_write_loop, args=(store, doc_ids, done, stats),
        daemon=True,
    )
    try:
        writer.start()
        reads = 0
        scrapes = []
        while not done.is_set():
            store.query_pres(
                doc_ids[reads % DOCUMENTS],
                DOC_QUERIES[reads % len(DOC_QUERIES)],
            )
            reads += 1
            if reads % 20 == 0:
                status, body = _scrape(server.url + "/metrics")
                assert status == 200
                scrapes.append(parse_prometheus(body))
        # One final mid-state scrape plus the health verdict.
        status, body = _scrape(server.url + "/metrics")
        assert status == 200
        scrapes.append(parse_prometheus(body))
        health_status, health_body = _scrape(server.url + "/healthz")
        health = json.loads(health_body)
        log_stats = store.request_log.stats()
    finally:
        done.set()
        writer.join(30)
        store.close()

    last = scrapes[-1]
    windowed_p99 = [
        s for s in last["samples"]
        if "shard" in s["name"]
        and s["labels"].get("window") == "60s"
        and s["labels"].get("quantile") == "0.99"
        and s["value"] > 0
    ]
    return {
        "reads": reads,
        "writer": stats,
        "scrapes": len(scrapes),
        "samples_last_scrape": len(last["samples"]),
        "windowed_shard_p99_series": len(windowed_p99),
        "healthz_status": health["status"],
        "healthz_http": health_status,
        "request_log": log_stats,
    }, health


def test_e18_telemetry(tmp_path):
    tmp_path = str(tmp_path)
    document = generate_auction(SCALE, seed=SEED)
    overhead = _overhead_phase(tmp_path, document)
    load, health = _ops_under_write_load(tmp_path, document)

    result = ExperimentResult(
        experiment="E18",
        title="Telemetry plane overhead and live ops surface",
        workload=(
            f"auction sf={SCALE} x{DOCUMENTS} docs; {SHARDS}-shard "
            f"store; interleaved warm doc-scoped queries; E17 write "
            f"mix under /metrics scrapes"
        ),
        expectation=(
            "full telemetry (tracer + windows + wide events + ops "
            "endpoint) adds <= 5% to warm doc-scoped latency; "
            "/metrics stays a valid Prometheus exposition with "
            "windowed per-shard p99s while writes churn"
        ),
    )
    best_trial = min(
        overhead["trials"], key=lambda t: t["aggregate_ratio"]
    )
    for xpath, row in best_trial["per_query"].items():
        result.add_row(
            xpath,
            base_us=round(row["base_us"], 1),
            telemetry_us=round(row["telemetry_us"], 1),
            overhead_pct=round((row["ratio"] - 1.0) * 100.0, 2),
        )
    result.add_row(
        "aggregate (best of trials)",
        overhead_pct=round(
            (overhead["best_aggregate_ratio"] - 1.0) * 100.0, 2
        ),
        delta_us=round(best_trial["aggregate_delta_us"], 1),
    )
    result.add_row(
        "ops under write load",
        reads=load["reads"],
        writes=load["writer"]["inserts"] + load["writer"]["deletes"],
        scrapes=load["scrapes"],
        shard_p99_series=load["windowed_shard_p99_series"],
    )
    write_report(result)

    payload = {
        "experiment": "E18",
        "scheme": SCHEME,
        "shards": SHARDS,
        "documents": DOCUMENTS,
        "scale": SCALE,
        "interleaved_pairs": INTERLEAVED_PAIRS,
        "trials": TRIALS,
        "overhead": overhead,
        "write_load": load,
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # Acceptance: telemetry-on overhead within budget on the warm path.
    assert overhead["best_aggregate_ratio"] <= OVERHEAD_BUDGET, (
        f"telemetry overhead "
        f"{(overhead['best_aggregate_ratio'] - 1) * 100:.2f}% exceeds "
        f"{(OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
    )
    # The live surface held up while writes churned.
    assert load["healthz_http"] == 200
    assert health["status"] == "ok"
    assert load["windowed_shard_p99_series"] >= 1
    assert all(
        shard["status"] in ("ok", "busy") for shard in health["shards"]
    )
