"""Shared fixtures for the experiment suite (E1–E12).

Documents and populated stores are built once per session; every bench
draws from them.  Scale factors are laptop-sized — the experiments
compare *shapes* across schemes, which are scale-stable (see DESIGN.md).
"""

import os
import sys
import time

import pytest

from repro.bench import report as bench_report
from repro.core.registry import available_schemes, create_scheme
from repro.obs import Tracer, write_chrome_trace, write_jsonl
from repro.relational.database import DURABILITY_PROFILES, Database
from repro.workloads import (
    auction_dtd,
    dblp_dtd,
    generate_auction,
    generate_dblp,
)

#: Display/iteration order of schemes in every experiment.
SCHEMES = ("edge", "binary", "universal", "interval", "dewey", "xrel",
           "inlining")

BASE_SCALE = 0.1
SCALE_SWEEP = (0.05, 0.1, 0.2, 0.4)
SEED = 42

#: Durability profile for every benchmark database.  The suite defaults
#: to the seed pragmas (``bulk_load``); rerun with
#: ``XMLREL_BENCH_PROFILE=durable`` (or ``paranoid``) to measure the
#: experiments under crash-safe settings — E13 quantifies the gap.
PROFILE = os.environ.get("XMLREL_BENCH_PROFILE", "bulk_load")
if PROFILE not in DURABILITY_PROFILES:
    raise RuntimeError(
        f"XMLREL_BENCH_PROFILE={PROFILE!r} is not one of "
        f"{sorted(DURABILITY_PROFILES)}"
    )

#: ``XMLREL_TRACE=/path/to/trace.jsonl`` turns on session-wide tracing:
#: every benchmark database reports spans/statement events/metrics into
#: one tracer, experiment reports are folded in as point events, and the
#: session-finish hook writes the JSON Lines log to the given path plus
#: a Chrome-trace sibling (``<path>.chrome.json``) for
#: ``chrome://tracing``.  Unset (the default) the tracer is disabled and
#: the suite measures the untraced hot paths.
TRACE_PATH = os.environ.get("XMLREL_TRACE")
SESSION_TRACER = Tracer(enabled=bool(TRACE_PATH))

if TRACE_PATH:
    @bench_report.add_sink
    def _trace_report(record):
        SESSION_TRACER.event(
            "experiment-report",
            **{k: v for k, v in record.items() if k != "text"},
        )


def pytest_sessionfinish(session, exitstatus):
    if TRACE_PATH:
        write_jsonl(SESSION_TRACER, TRACE_PATH)
        write_chrome_trace(SESSION_TRACER, TRACE_PATH + ".chrome.json")


def bench_database(path=":memory:"):
    """A database under the suite-wide durability profile."""
    return Database(path, profile=PROFILE, tracer=SESSION_TRACER)


def peak_rss_kb():
    """Peak resident set size of this process, in KiB.

    Reads ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` (KiB on Linux).
    The value is **monotonic** — it never goes back down — so a
    memory-budget comparison must run the low-memory contender *first*:
    once a memory-hungry phase has run, every later reading includes its
    peak.
    """
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # macOS reports bytes; Linux reports KiB.  Normalize to KiB.
    if sys.platform == "darwin":
        usage //= 1024
    return usage


def measure_throughput(fn, *args, **kwargs):
    """Run *fn* once, returning ``(result, elapsed_seconds, rss_growth_kb)``
    where the growth is peak RSS after minus peak RSS before (0 when the
    call stayed under the process's previous high-water mark)."""
    rss_before = peak_rss_kb()
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - started
    return result, elapsed, max(0, peak_rss_kb() - rss_before)


def scheme_kwargs(name, dtd_factory=auction_dtd):
    return {"dtd": dtd_factory()} if name == "inlining" else {}


@pytest.fixture(scope="session")
def auction_documents():
    """Scale-factor sweep of auction documents."""
    return {
        sf: generate_auction(sf, seed=SEED) for sf in SCALE_SWEEP
    }


@pytest.fixture(scope="session")
def auction_document(auction_documents):
    return auction_documents[BASE_SCALE]


@pytest.fixture(scope="session")
def auction_stores(auction_document):
    """scheme name -> (scheme, doc_id) over the base auction document."""
    stores = {}
    databases = []
    for name in SCHEMES:
        db = bench_database()
        databases.append(db)
        scheme = create_scheme(name, db, **scheme_kwargs(name))
        result = scheme.store(auction_document, "auction")
        stores[name] = (scheme, result.doc_id)
    yield stores
    for db in databases:
        db.close()


@pytest.fixture(scope="session")
def dblp_document():
    return generate_dblp(2000, seed=SEED)


@pytest.fixture(scope="session")
def dblp_stores(dblp_document):
    stores = {}
    databases = []
    for name in SCHEMES:
        db = bench_database()
        databases.append(db)
        scheme = create_scheme(
            name, db, **scheme_kwargs(name, dtd_factory=dblp_dtd)
        )
        result = scheme.store(dblp_document, "dblp")
        stores[name] = (scheme, result.doc_id)
    yield stores
    for db in databases:
        db.close()
