"""E20 — the network gateway under open-loop load.

Three measurements against a live :class:`~repro.serve.gateway.Gateway`
(real sockets, real HTTP), driven by the open-loop generator in
:mod:`repro.bench.loadgen`:

* **latency vs offered load** — a rate sweep over a multi-shard scatter
  query against a deliberately small server (``max_in_flight=2``).
  Open-loop arrivals don't slow down when the server does, so past
  capacity the sweep must show a *saturation knee*: p99 blowing up,
  achieved rate falling short of offered, or the admission gate
  shedding (HTTP 429).  The knee is located by
  :func:`~repro.bench.loadgen.saturation_knee` and asserted to exist.
* **streaming vs materialization** — the same skewed scatter (one shard
  holds a document ~6x the others) served both ways.  The materialized
  endpoint cannot answer before the slowest shard + merge + full JSON
  serialization; the NDJSON stream flushes each shard as it lands, so
  its p50 *first-row* latency must beat the materialized p50 *full*
  latency.  That gap is the entire point of the streaming protocol.
* **deadline probe** — a short burst with a ~0.5 ms budget over the
  scatter, asserting the 504 path fires end-to-end through HTTP.

Writes ``benchmarks/results/BENCH_PR10.json`` for the CI
gateway-smoke job.  Scale knobs (env): ``XMLREL_E20_RATES``
(comma-separated offered rates), ``XMLREL_E20_DURATION`` (seconds per
rate point).
"""

import json
import os

from repro.bench import ExperimentResult, write_report
from repro.bench.loadgen import run_load, saturation_knee
from repro.serve import ShardedStore
from repro.workloads import generate_auction

from benchmarks.conftest import SEED

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR10.json"
)

SCATTER_QUERY = "/site/people/person/name"
SHARDS = 4
SMALL_DOCS = 4

DEFAULT_RATES = (50, 100, 200, 400, 800)


def _rates():
    raw = os.environ.get("XMLREL_E20_RATES")
    if not raw:
        return DEFAULT_RATES
    return tuple(float(r) for r in raw.split(","))


def _duration():
    return float(os.environ.get("XMLREL_E20_DURATION", "1.0"))


def _load_store(directory):
    """A 4-shard store with deliberately skewed shard weight.

    Round-robin placement advances one shard per store, so the loader
    interleaves stores to stack every *big* document (~75x the small
    ones) onto shard 0 while shards 1-3 get only small fillers.  The
    scatter's slowest shard is then several ms behind the fastest —
    the gap the streaming comparison exists to measure."""
    store = ShardedStore.open(
        directory,
        scheme="interval",
        shards=SHARDS,
        placement="round_robin",
        pool_size=4,
        max_in_flight=2,  # small on purpose: the sweep must find the wall
        on_shard_error="partial",
    )
    small = generate_auction(0.02, seed=SEED)
    store.store_many(
        [small] * SMALL_DOCS,
        names=[f"auction-{i}" for i in range(SMALL_DOCS)],
    )
    big = generate_auction(1.5, seed=SEED + 1)
    for round_no in range(3):
        store.store(big, name=f"auction-big-{round_no}")  # shard 0
        for filler in range(SHARDS - 1):  # shards 1..3 stay light
            store.store(small, name=f"filler-{round_no}-{filler}")
    return store


def _sweep(url):
    reports = []
    duration = _duration()
    for rate in _rates():
        report = run_load(
            url,
            xpath=SCATTER_QUERY,
            rate=rate,
            duration=duration,
            client=f"sweep-{rate:g}",
            timeout=30.0,
        )
        reports.append(report)
    return reports


def _streaming_comparison(url):
    """Same scatter, both deliveries, gentle rate (no queueing noise)."""
    duration = max(1.0, _duration())
    materialized = run_load(
        url,
        xpath=SCATTER_QUERY,
        rate=10,
        duration=duration,
        stream=False,
        client="bench-materialized",
    )
    streamed = run_load(
        url,
        xpath=SCATTER_QUERY,
        rate=10,
        duration=duration,
        stream=True,
        client="bench-streamed",
    )
    return materialized.to_dict(), streamed.to_dict()


def _deadline_probe(url):
    """A burst with a budget no scatter can meet: 504s, end to end."""
    report = run_load(
        url,
        xpath=SCATTER_QUERY,
        rate=20,
        duration=0.5,
        client="bench-deadline",
        deadline_seconds=0.0005,
    )
    return report.to_dict()


def test_e20_gateway(tmp_path):
    store = _load_store(str(tmp_path))
    with store:
        gateway = store.serve_gateway()
        url = gateway.url
        # Warm pools and plan caches before any timed point.
        store.query_all(SCATTER_QUERY)

        sweep = _sweep(url)
        knee = saturation_knee(sweep)
        materialized, streamed = _streaming_comparison(url)
        deadline = _deadline_probe(url)
        stats = gateway.snapshot()

    result = ExperimentResult(
        experiment="E20",
        title="Gateway under open-loop load (knee, streaming, deadlines)",
        workload=(
            f"auction sf=0.02 x{SMALL_DOCS} + sf=0.12 x1 on {SHARDS} "
            f"shards; scatter {SCATTER_QUERY!r}; rates {_rates()}"
        ),
        expectation=(
            "open-loop latency shows a saturation knee at the admission "
            "wall; streamed first-row p50 beats materialized full p50 "
            "on the skewed scatter; a sub-millisecond deadline 504s"
        ),
    )
    for report in sweep:
        summary = report.to_dict()
        result.add_row(
            f"offered {report.offered_rate:g}/s",
            achieved=summary["achieved_rate"],
            p50_ms=(summary["latency_seconds"]["p50"] or 0) * 1e3,
            p99_ms=(summary["latency_seconds"]["p99"] or 0) * 1e3,
            shed=summary["statuses"].get("429", 0),
        )
    result.add_row(
        "materialized full p50 ms",
        value=(materialized["latency_seconds"]["p50"] or 0) * 1e3,
    )
    result.add_row(
        "streamed first-row p50 ms",
        value=(streamed["first_row_seconds"]["p50"] or 0) * 1e3,
    )
    write_report(result)

    payload = {
        "experiment": "E20",
        "cpu_count": os.cpu_count(),
        "shards": SHARDS,
        "scatter_query": SCATTER_QUERY,
        "offered_load_sweep": [r.to_dict() for r in sweep],
        "saturation_knee": knee,
        "streaming": {
            "materialized": materialized,
            "streamed": streamed,
            "materialized_full_p50": (
                materialized["latency_seconds"]["p50"]
            ),
            "streamed_first_row_p50": (
                streamed["first_row_seconds"]["p50"]
            ),
        },
        "deadline_probe": deadline,
        "gateway_stats": {
            "quotas": stats["quotas"],
            "store": stats["store"],
        },
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # Every rate point answered something.
    for report in sweep:
        assert report.samples, "empty load point"
    # The open-loop curve has an identifiable saturation knee.
    assert knee is not None, (
        "no saturation knee found — the sweep never saturated a "
        "max_in_flight=2 server; raise XMLREL_E20_RATES"
    )
    # Streaming answers before materialization finishes.
    stream_p50 = streamed["first_row_seconds"]["p50"]
    full_p50 = materialized["latency_seconds"]["p50"]
    assert stream_p50 is not None and full_p50 is not None
    assert stream_p50 < full_p50, (
        f"streamed first-row p50 {stream_p50 * 1e3:.2f}ms did not beat "
        f"materialized full p50 {full_p50 * 1e3:.2f}ms"
    )
    # The deadline path fires over real HTTP.
    assert deadline["statuses"].get("504", 0) > 0, deadline
