"""E19 — streaming ingest: constant-memory shredding, parallel bulk load.

Exercises the PR-8 ingest pipeline end to end on a tiled synthetic
auction corpus (one generated document's body repeated K times per
file, so a multi-hundred-MB corpus costs one small DOM to build):

* **memory-bounded load** — ``store_corpus`` over the whole corpus on
  a WAL (``durable``) store: file handles feed the chunked scanner,
  the SAX shredder numbers nodes at close time, and per-shard bulk
  sessions insert as events arrive.  Peak-RSS growth must stay under a
  fixed budget **smaller than a single corpus file's DOM** — the
  memory bound a tree-building loader cannot meet, demonstrated right
  after by DOM-parsing one file and watching RSS blow through the same
  budget.  (``ru_maxrss`` is monotonic, so the low-memory contender
  must run first; the ``bulk_load`` profile is excluded here because
  its in-RAM rollback journal and temp-store sorter — speed knobs, not
  pipeline state — would dominate the reading.)
* **ingest throughput** — the same corpus under the ``bulk_load``
  profile: a sequential DOM ``store()`` loop versus the parallel
  streaming ``store_corpus`` at 4 shards.  Normalized MB/s must favor
  streaming by ``XMLREL_E19_MIN_SPEEDUP`` (default 2x): the streaming
  side skips tree construction entirely, defers index builds to one
  rebuild per shard, and overlaps four shards' C work under the GIL.
* **telemetry** — the ``ingest.*`` instruments (documents, rows,
  queue depth, per-shard load seconds) recorded during the streaming
  run land in the JSON report.

Writes ``benchmarks/results/BENCH_PR8.json`` for the CI ingest-smoke
job.  Scale knobs (``XMLREL_E19_*``) let CI run a reduced corpus.
"""

import json
import os
import shutil
from pathlib import Path

from repro.bench import ExperimentResult, write_report
from repro.serve import ShardedStore
from repro.workloads import generate_auction
from repro.xml import parse_document, serialize

from benchmarks.conftest import SEED, measure_throughput, peak_rss_kb

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR8.json"
)

SCHEME = "interval"


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _env_float(name, default):
    return float(os.environ.get(name, default))


#: Scale factor of the tile document each corpus file repeats.
TILE_SCALE = _env_float("XMLREL_E19_TILE_SCALE", 1.0)
#: Body repetitions per corpus file (file size ~= TILES x tile size).
TILES = _env_int("XMLREL_E19_TILES", 80)
#: Corpus files (streamed by every phase).
FILES = _env_int("XMLREL_E19_FILES", 6)
#: Files the sequential DOM baseline loads (it is ~2x slower per MB,
#: so the baseline reads a prefix and rates are compared per MB).
DOM_FILES = _env_int("XMLREL_E19_DOM_FILES", 2)
SHARDS = _env_int("XMLREL_E19_SHARDS", 4)
#: The fixed memory budget (MiB of peak-RSS growth) the streaming load
#: must meet and a single-file DOM parse must not.
RSS_BUDGET_MB = _env_float("XMLREL_E19_RSS_BUDGET_MB", 150.0)
#: Required streaming-vs-DOM throughput ratio (per-MB).
MIN_SPEEDUP = _env_float("XMLREL_E19_MIN_SPEEDUP", 2.0)


def _build_corpus(directory):
    """Tile one generated auction document into FILES large files.

    Repeating the ``<site>`` body K times keeps the markup density and
    element mix of the workload while the only DOM ever built is the
    small tile — the corpus on disk can dwarf this process's memory.
    """
    tile = serialize(generate_auction(TILE_SCALE, seed=SEED))
    open_end = tile.index(">", tile.index("<site")) + 1
    close_start = tile.rindex("</site>")
    head = tile[:open_end]
    inner = tile[open_end:close_start]
    tail = tile[close_start:]
    paths = []
    for index in range(FILES):
        path = os.path.join(directory, f"corpus-{index}.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(head)
            for _ in range(TILES):
                handle.write(inner)
            handle.write(tail)
        paths.append(path)
    return paths


def _file_mb(paths):
    return sum(os.path.getsize(p) for p in paths) / 1e6


def _ingest_metrics(store):
    """The ``ingest.*`` instrument readings after a corpus load."""
    snapshot = store.metrics.snapshot()
    readings = {
        name: value
        for name, value in snapshot.get("counters", {}).items()
        if name.startswith("ingest.")
    }
    readings.update(
        {
            name: value
            for name, value in snapshot.get("gauges", {}).items()
            if name.startswith("ingest.")
        }
    )
    for name, stats in snapshot.get("histograms", {}).items():
        if name.startswith("ingest."):
            readings[name] = {
                "count": stats.get("count"),
                "p50": stats.get("p50"),
                "p99": stats.get("p99"),
            }
    return readings


def test_e19_ingest(tmp_path):
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    paths = _build_corpus(str(corpus_dir))
    corpus_mb = _file_mb(paths)
    names = [f"corpus-{i}" for i in range(len(paths))]

    # Phase 1 — memory-bounded streaming load (must run before any
    # DOM phase: ru_maxrss never goes back down).
    wal_dir = tmp_path / "wal-store"
    with ShardedStore.open(
        str(wal_dir), scheme=SCHEME, shards=SHARDS,
        placement="round_robin", profile="durable",
    ) as wal_store:
        doc_ids, stream_wal_s, stream_rss_kb = measure_throughput(
            wal_store.store_corpus,
            [Path(p) for p in paths],
            names=names,
        )
        assert len(doc_ids) == len(paths)
        wal_metrics = _ingest_metrics(wal_store)
    stream_rss_mb = stream_rss_kb / 1024
    shutil.rmtree(wal_dir)

    # Phase 2 — the budget is real: DOM-parsing ONE corpus file busts
    # it (the whole point of shredding off the event stream).
    def _dom_parse_one():
        with open(paths[0], encoding="utf-8") as handle:
            return parse_document(handle.read())

    document, dom_parse_s, dom_parse_rss_kb = measure_throughput(
        _dom_parse_one
    )
    dom_parse_rss_mb = dom_parse_rss_kb / 1024
    del document

    # Phase 3 — ingest throughput, bulk_load profile on both sides.
    dom_dir = tmp_path / "dom-store"
    dom_paths = paths[:DOM_FILES]
    with ShardedStore.open(
        str(dom_dir), scheme=SCHEME, shards=SHARDS,
        placement="round_robin", profile="bulk_load",
    ) as dom_store:
        def _dom_loop():
            for index, path in enumerate(dom_paths):
                with open(path, encoding="utf-8") as handle:
                    dom_store.store(
                        parse_document(handle.read()), names[index]
                    )

        _, dom_s, _ = measure_throughput(_dom_loop)
    dom_mb = _file_mb(dom_paths)
    shutil.rmtree(dom_dir)

    stream_dir = tmp_path / "stream-store"
    with ShardedStore.open(
        str(stream_dir), scheme=SCHEME, shards=SHARDS,
        placement="round_robin", profile="bulk_load",
    ) as stream_store:
        doc_ids, stream_s, _ = measure_throughput(
            stream_store.store_corpus,
            [Path(p) for p in paths],
            names=names,
        )
        assert len(doc_ids) == len(paths)
        stream_metrics = _ingest_metrics(stream_store)
        shard_counts = stream_store.shard_counts()
    shutil.rmtree(stream_dir)

    dom_rate = dom_mb / dom_s
    stream_rate = corpus_mb / stream_s
    speedup = stream_rate / dom_rate

    result = ExperimentResult(
        experiment="E19",
        title="Streaming ingest: constant-memory shred, parallel load",
        workload=(
            f"tiled auction corpus: {len(paths)} files x "
            f"{corpus_mb / len(paths):.0f} MB ({corpus_mb:.0f} MB); "
            f"{SHARDS}-shard {SCHEME} store"
        ),
        expectation=(
            f"streaming load stays under {RSS_BUDGET_MB:.0f} MB of "
            "RSS growth (one file's DOM does not) and beats the "
            f"sequential DOM loop by >= {MIN_SPEEDUP:.1f}x per MB"
        ),
    )
    result.add_row(
        "stream (WAL, RSS-gated)",
        seconds=round(stream_wal_s, 2),
        mb_per_s=round(corpus_mb / stream_wal_s, 3),
        rss_growth_mb=round(stream_rss_mb, 1),
    )
    result.add_row(
        "DOM parse, 1 file",
        seconds=round(dom_parse_s, 2),
        mb_per_s=round((corpus_mb / len(paths)) / dom_parse_s, 3),
        rss_growth_mb=round(dom_parse_rss_mb, 1),
    )
    result.add_row(
        "DOM store loop (bulk_load)",
        seconds=round(dom_s, 2),
        mb_per_s=round(dom_rate, 3),
    )
    result.add_row(
        "stream store_corpus (bulk_load)",
        seconds=round(stream_s, 2),
        mb_per_s=round(stream_rate, 3),
        speedup=round(speedup, 2),
    )
    write_report(result)

    payload = {
        "experiment": "E19",
        "cpu_count": os.cpu_count(),
        "scheme": SCHEME,
        "shards": SHARDS,
        "corpus": {
            "files": len(paths),
            "total_mb": round(corpus_mb, 1),
            "tile_scale": TILE_SCALE,
            "tiles_per_file": TILES,
        },
        "memory": {
            "budget_mb": RSS_BUDGET_MB,
            "stream_rss_growth_mb": round(stream_rss_mb, 1),
            "dom_parse_one_file_rss_growth_mb": round(
                dom_parse_rss_mb, 1
            ),
            "peak_rss_kb": peak_rss_kb(),
        },
        "throughput": {
            "dom_files": DOM_FILES,
            "dom_seconds": round(dom_s, 2),
            "dom_mb_per_s": round(dom_rate, 3),
            "stream_seconds": round(stream_s, 2),
            "stream_mb_per_s": round(stream_rate, 3),
            "stream_wal_seconds": round(stream_wal_s, 2),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
        },
        "ingest_metrics": {
            "wal": wal_metrics,
            "bulk_load": stream_metrics,
        },
        "shard_counts": {
            str(shard): count for shard, count in shard_counts.items()
        },
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # Acceptance: the streaming load met the budget, the DOM parse of
    # a single file could not, every document landed, and streaming
    # out-ingested the DOM loop by the required factor.
    assert stream_rss_mb <= RSS_BUDGET_MB, (
        f"streaming load grew RSS by {stream_rss_mb:.0f} MB "
        f"(budget {RSS_BUDGET_MB:.0f} MB)"
    )
    assert dom_parse_rss_mb > RSS_BUDGET_MB, (
        f"DOM parse of one file only grew RSS by "
        f"{dom_parse_rss_mb:.0f} MB — raise the corpus scale so the "
        f"budget ({RSS_BUDGET_MB:.0f} MB) separates the two paths"
    )
    assert sum(shard_counts.values()) == len(paths)
    assert speedup >= MIN_SPEEDUP, (
        f"streaming ingest at {stream_rate:.2f} MB/s is only "
        f"{speedup:.2f}x the DOM loop's {dom_rate:.2f} MB/s "
        f"(required {MIN_SPEEDUP:.1f}x)"
    )
