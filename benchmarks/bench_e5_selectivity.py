"""E5 (Figure 3) — value-predicate latency vs. selectivity.

Query family: ``/site/open_auctions/open_auction[initial > X]/current``
with the threshold X swept so the predicate keeps from ~100 % down to a
few percent of the auctions (``initial`` is drawn uniformly from
[1, 200]).  Expected shape: every scheme gets cheaper as the predicate
gets more selective (fewer rows survive into the final join/fetch), and
the schemes converge at high selectivity — the tutorial's point that
value-selective workloads blur the differences between the mappings.
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report

from benchmarks.conftest import SCHEMES

THRESHOLDS = (1, 100, 150, 190)


def query_for(threshold: int) -> str:
    return (
        f"/site/open_auctions/open_auction[initial > {threshold}]/current"
    )


@pytest.mark.benchmark(group="e5-selectivity", max_time=0.5, min_rounds=3)
@pytest.mark.parametrize("threshold", THRESHOLDS)
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_e5_latency(benchmark, auction_stores, scheme_name, threshold):
    scheme, doc_id = auction_stores[scheme_name]
    result = benchmark(scheme.query_pres, doc_id, query_for(threshold))
    assert isinstance(result, list)


def test_e5_report(benchmark, auction_stores):
    result = ExperimentResult(
        experiment="E5",
        title="Value predicate latency vs selectivity (ms)",
        workload=(
            "auction sf=0.1, initial > X for X in "
            f"{list(THRESHOLDS)} (uniform prices in [1, 200])"
        ),
        expectation=(
            "all schemes get cheaper as selectivity rises; differences "
            "shrink at the selective end"
        ),
    )
    counts = {}
    for scheme_name in SCHEMES:
        scheme, doc_id = auction_stores[scheme_name]
        row = result.add_row(scheme_name)
        for threshold in THRESHOLDS:
            query = query_for(threshold)
            seconds = time_call(
                lambda s=scheme, q=query, d=doc_id: s.query_pres(d, q),
                repetitions=5,
            )
            row.set(f"X={threshold}", seconds * 1000)
            count = len(scheme.query_pres(doc_id, query))
            assert counts.setdefault((threshold,), count) == count
    write_report(result)
    benchmark(lambda: None)

    # Monotonic result sizes: higher threshold, fewer matches.
    sizes = [counts[(t,)] for t in THRESHOLDS]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] > 0
    assert sizes[-1] < sizes[0] / 5  # the sweep really spans selectivity
