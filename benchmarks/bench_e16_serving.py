"""E16 — concurrent serving: thread scaling, shard scaling, degradation.

Three measurements over :class:`~repro.serve.ShardedStore`:

* **throughput vs thread count** — 1/2/4/8 client threads issuing
  doc-scoped queries against a 4-shard store, per scheme (edge,
  interval, dewey).  sqlite3 releases the GIL inside ``sqlite3_step``,
  so read throughput should scale with cores; the scaling assertion is
  gated on ``os.cpu_count()`` because a single-core box serializes the
  steps no matter how many client threads queue up.
* **throughput vs shard count** — 4 client threads scatter-gathering
  over 1/2/4 shards: more shards = more independent WAL files = less
  page-cache and fan-out contention per query.
* **degraded mode** — one shard down mid-run under
  ``on_shard_error="partial"``: the store keeps answering with
  ``partial=True`` instead of crashing (the ISSUE's acceptance check).

Writes the machine-readable ``benchmarks/results/BENCH_PR5.json``
consumed by the CI serving-smoke job.
"""

import json
import os
import threading
import time

from repro.bench import ExperimentResult, write_report
from repro.reliability import ShardFaultPolicy
from repro.serve import ShardedStore
from repro.workloads import generate_auction

from benchmarks.conftest import SEED

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR5.json"
)

BENCH_SCHEMES = ("edge", "interval", "dewey")
THREAD_SWEEP = (1, 2, 4, 8)
SHARD_SWEEP = (1, 2, 4)
DOCUMENTS = 8
QUERIES_PER_THREAD = 40
SCATTER_QUERIES_PER_THREAD = 8

#: Doc-scoped query shapes of the auction workload, cycled per request.
DOC_QUERIES = (
    "/site/people/person/name",
    "/site/open_auctions/open_auction/bidder/increase",
    "//item/name",
)
SCATTER_QUERY = "/site/people/person/name"


def _load_store(directory, scheme, shards, **kwargs):
    document = generate_auction(0.05, seed=SEED)
    store = ShardedStore.open(
        directory,
        scheme=scheme,
        shards=shards,
        placement="round_robin",
        pool_size=8,
        max_in_flight=64,
        **kwargs,
    )
    doc_ids = store.store_many(
        [document] * DOCUMENTS,
        names=[f"auction-{i}" for i in range(DOCUMENTS)],
    )
    return store, doc_ids


def _run_clients(threads, worker):
    """Run *worker(thread_index)* on N threads; returns wall seconds."""
    barrier = threading.Barrier(threads + 1)
    errors = []

    def clocked(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    pool = [
        threading.Thread(target=clocked, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed


def _thread_sweep(tmp_path, scheme):
    """Doc-scoped queries/sec at each client thread count, one scheme."""
    store, doc_ids = _load_store(
        os.path.join(tmp_path, f"threads-{scheme}"), scheme, shards=4
    )
    throughput = {}
    with store:
        # Warm every pool and plan cache before timing.
        for doc_id in doc_ids:
            store.query_pres(doc_id, DOC_QUERIES[0])

        for threads in THREAD_SWEEP:

            def worker(index):
                for i in range(QUERIES_PER_THREAD):
                    doc_id = doc_ids[(index + i) % len(doc_ids)]
                    xpath = DOC_QUERIES[i % len(DOC_QUERIES)]
                    assert store.query_pres(doc_id, xpath)

            elapsed = _run_clients(threads, worker)
            throughput[threads] = threads * QUERIES_PER_THREAD / elapsed
    return throughput


def _shard_sweep(tmp_path, scheme):
    """Scatter queries/sec at 4 client threads, per shard count."""
    throughput = {}
    for shards in SHARD_SWEEP:
        store, _ = _load_store(
            os.path.join(tmp_path, f"shards-{scheme}-{shards}"),
            scheme,
            shards=shards,
        )
        with store:
            store.query_all(SCATTER_QUERY)  # warm

            def worker(index):
                for _ in range(SCATTER_QUERIES_PER_THREAD):
                    result = store.query_all(SCATTER_QUERY)
                    assert len(result.rows) > 0

            elapsed = _run_clients(4, worker)
            throughput[shards] = (
                4 * SCATTER_QUERIES_PER_THREAD / elapsed
            )
    return throughput


def _degraded_mode(tmp_path):
    """One shard down mid-run: partial answer, not a crash."""
    policy = ShardFaultPolicy()
    store, doc_ids = _load_store(
        os.path.join(tmp_path, "degraded"),
        "interval",
        shards=4,
        on_shard_error="partial",
        fault_policy=policy,
    )
    with store:
        healthy = store.query_all(SCATTER_QUERY)
        policy.fail_shard(1)
        degraded = store.query_all(SCATTER_QUERY)
        policy.heal_all()
        healed = store.query_all(SCATTER_QUERY)
        assert not healthy.partial
        assert degraded.partial and degraded.failed_shards
        assert 0 < len(degraded.rows) < len(healthy.rows)
        assert not healed.partial
        assert len(healed.rows) == len(healthy.rows)
        return {
            "healthy_rows": len(healthy.rows),
            "degraded_rows": len(degraded.rows),
            "failed_shards": [s for s, _ in degraded.failed_shards],
            "healed_rows": len(healed.rows),
        }


def test_e16_serving(tmp_path):
    tmp_path = str(tmp_path)
    thread_results = {
        scheme: _thread_sweep(tmp_path, scheme)
        for scheme in BENCH_SCHEMES
    }
    shard_results = {
        scheme: _shard_sweep(tmp_path, scheme)
        for scheme in BENCH_SCHEMES
    }
    degraded = _degraded_mode(tmp_path)

    result = ExperimentResult(
        experiment="E16",
        title="Concurrent serving (threads, shards, degraded modes)",
        workload=(
            f"auction sf=0.05 x{DOCUMENTS} docs; 4-shard store; "
            f"threads {THREAD_SWEEP}; shards {SHARD_SWEEP}"
        ),
        expectation=(
            "doc-scoped throughput scales with client threads on "
            "multi-core hosts; scatter throughput grows with shards; "
            "a failed shard degrades to a partial answer"
        ),
    )
    for scheme in BENCH_SCHEMES:
        result.add_row(
            f"{scheme} q/s vs threads",
            **{
                f"t{threads}": qps
                for threads, qps in thread_results[scheme].items()
            },
        )
    for scheme in BENCH_SCHEMES:
        result.add_row(
            f"{scheme} scatter q/s vs shards",
            **{
                f"s{shards}": qps
                for shards, qps in shard_results[scheme].items()
            },
        )
    write_report(result)

    payload = {
        "experiment": "E16",
        "cpu_count": os.cpu_count(),
        "documents": DOCUMENTS,
        "queries_per_thread": QUERIES_PER_THREAD,
        "threads_vs_throughput": {
            scheme: {
                str(threads): qps for threads, qps in sweep.items()
            }
            for scheme, sweep in thread_results.items()
        },
        "shards_vs_throughput": {
            scheme: {
                str(shards): qps for shards, qps in sweep.items()
            }
            for scheme, sweep in shard_results.items()
        },
        "degraded_mode": degraded,
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # Serving never loses work: every configuration answered queries.
    for scheme in BENCH_SCHEMES:
        for qps in thread_results[scheme].values():
            assert qps > 0
        for qps in shard_results[scheme].values():
            assert qps > 0

    # The >2x thread-scaling acceptance needs real cores: sqlite3 only
    # overlaps reads when sqlite3_step can run on another CPU.  On a
    # single-core host the sweep still reports, but asserting scaling
    # there would test the box, not the code.
    if (os.cpu_count() or 1) >= 4:
        best_scaling = max(
            thread_results[scheme][4] / thread_results[scheme][1]
            for scheme in BENCH_SCHEMES
        )
        assert best_scaling > 2.0, (
            f"expected >2x doc-scoped throughput from 1 to 4 threads on "
            f"a 4-shard store; best scheme scaled {best_scaling:.2f}x"
        )
