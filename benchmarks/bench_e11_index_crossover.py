"""E11 (Figure 6) — point lookup vs. full scan as the database grows.

On bibliographies of growing size, two queries per scheme:

* point — ``/dblp/article[@key = 'article/8']/title`` (value-index
  driven: one record),
* scan  — ``//author`` (touches every record).

Expected shape: point-lookup latency stays near-flat as the document
grows (B-tree probes), scan latency grows linearly; the ratio scan/point
therefore widens with size — the classic index-crossover picture.
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report
from repro.core.registry import create_scheme
from repro.relational.database import Database
from repro.workloads import dblp_dtd, generate_dblp

from benchmarks.conftest import SCHEMES, scheme_kwargs

SIZES = (500, 2000, 8000)
POINT_QUERY = "/dblp/article[@key = 'article/8']/title"
SCAN_QUERY = "//author"


@pytest.fixture(scope="module")
def dblp_sized_stores():
    stores = {}
    databases = []
    documents = {n: generate_dblp(n, seed=7) for n in SIZES}
    for name in SCHEMES:
        per_size = {}
        for n in SIZES:
            db = Database()
            databases.append(db)
            scheme = create_scheme(
                name, db, **scheme_kwargs(name, dtd_factory=dblp_dtd)
            )
            result = scheme.store(documents[n], f"dblp-{n}")
            db.analyze()
            per_size[n] = (scheme, result.doc_id)
        stores[name] = per_size
    yield stores
    for db in databases:
        db.close()


@pytest.mark.benchmark(group="e11-point", max_time=0.5, min_rounds=3)
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_e11_point_lookup(benchmark, dblp_sized_stores, scheme_name):
    scheme, doc_id = dblp_sized_stores[scheme_name][SIZES[-1]]
    result = benchmark(scheme.query_pres, doc_id, POINT_QUERY)
    assert len(result) == 1


def test_e11_report(benchmark, dblp_sized_stores):
    result = ExperimentResult(
        experiment="E11",
        title="Point lookup vs full scan (ms)",
        workload=f"dblp with {list(SIZES)} records",
        expectation=(
            "point lookups near-flat in document size; scans linear; "
            "the gap widens with size"
        ),
    )
    measured = {}
    for scheme_name in SCHEMES:
        row = result.add_row(scheme_name)
        for n in SIZES:
            scheme, doc_id = dblp_sized_stores[scheme_name][n]
            point = time_call(
                lambda s=scheme, d=doc_id: s.query_pres(d, POINT_QUERY),
                repetitions=9,
            )
            scan = time_call(
                lambda s=scheme, d=doc_id: s.query_pres(d, SCAN_QUERY),
                repetitions=5,
            )
            measured[(scheme_name, n, "point")] = point
            measured[(scheme_name, n, "scan")] = scan
            row.set(f"point n={n}", point * 1000)
            row.set(f"scan n={n}", scan * 1000)
    write_report(result)
    benchmark(lambda: None)

    small, large = SIZES[0], SIZES[-1]
    growth = large / small  # 16x more data
    for scheme_name in ("edge", "binary", "interval", "dewey", "inlining"):
        point_growth = (
            measured[(scheme_name, large, "point")]
            / measured[(scheme_name, small, "point")]
        )
        scan_growth = (
            measured[(scheme_name, large, "scan")]
            / measured[(scheme_name, small, "scan")]
        )
        # Scans scale with the data; point lookups scale sublinearly
        # (value indexes), so the gap widens with document size.  Bounds
        # are generous: these are wall-clock measurements that also run
        # inside the full suite on a busy machine.
        assert scan_growth > growth / 5, scheme_name
        assert point_growth < scan_growth, scheme_name
        assert point_growth < growth * 1.25, scheme_name
    # The schema-aware mappings achieve near-flat point lookups here.
    for scheme_name in ("binary", "inlining"):
        point_growth = (
            measured[(scheme_name, large, "point")]
            / measured[(scheme_name, small, "point")]
        )
        assert point_growth < 6, scheme_name
