"""E15 — the static-analysis layer: lint overhead and ``//`` expansion.

Two measurements:

* **plan-lint overhead** — cold translation time for the auction suite
  with ``lint="off"`` vs ``lint="default"`` (the linter walks the typed
  SQL AST against the schema catalog once per cold translation; warm
  cache hits never re-lint, so the warm overhead is ~0 and the cold
  overhead must stay a small fraction of translate time);
* **DTD-aware ``//`` expansion** — mid-path descendant queries
  (``/site/regions//item/name``) with and without an attached
  :class:`~repro.analysis.xpathlint.XPathAnalyzer` (``expand=True``):
  the non-recursive DTD region turns the descendant closure into a
  handful of explicit child chains, which on the edge mapping replaces
  a recursive CTE per query.  (A *leading* ``//`` is already a flat
  label filter on every scheme, so mid-path is where expansion pays.)
  Results must be identical.

Besides the usual markdown table, the run writes the machine-readable
``benchmarks/results/BENCH_PR4.json`` consumed by the CI analysis job.
"""

import json
import os
import time

from repro import XmlRelStore
from repro.bench import ExperimentResult, write_report
from repro.workloads import AUCTION_QUERIES, auction_dtd, generate_auction

from benchmarks.conftest import PROFILE, SEED

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR4.json"
)

LINT_REPETITIONS = 30

#: Mid-path descendant queries over the auction document whose ``//``
#: regions are non-recursive in the DTD — the expansion sweet spot
#: (``regions//item`` fans out into one chain per continent).
EXPANSION_QUERIES = (
    "/site/regions//item/name",
    "/site//open_auction/bidder/increase",
    "/site/closed_auctions//price",
)
EXPANSION_REPETITIONS = 15
EXPANSION_SCALE = 0.2


def _translation_seconds(store, doc_id, queries, repetitions):
    """Cold-translate *queries* *repetitions* times (cache cleared each
    round, so every round pays parse → plan → render [→ lint])."""
    translator = store.scheme.translator()
    total = 0.0
    for __ in range(repetitions):
        store.clear_plan_cache()
        started = time.perf_counter()
        for xpath in queries:
            translator.plans_for(doc_id, xpath)
        total += time.perf_counter() - started
    return total


def test_e15_analysis():
    auction = generate_auction(0.05, seed=SEED)
    queries = [spec.xpath for spec in AUCTION_QUERIES]

    # -- plan-lint overhead ---------------------------------------------------
    with XmlRelStore.open(
        scheme="interval", profile=PROFILE, lint="off"
    ) as store:
        doc_id = store.store(auction, "auction")
        off_seconds = _translation_seconds(
            store, doc_id, queries, LINT_REPETITIONS
        )
    with XmlRelStore.open(
        scheme="interval", profile=PROFILE, lint="default"
    ) as store:
        doc_id = store.store(auction, "auction")
        lint_seconds = _translation_seconds(
            store, doc_id, queries, LINT_REPETITIONS
        )
        # Warm path: cache hits skip translation and linting entirely.
        for xpath in queries:
            store.scheme.query_pres(doc_id, xpath)
        started = time.perf_counter()
        for xpath in queries:
            store.scheme.translator().plans_for(doc_id, xpath)
        warm_seconds = time.perf_counter() - started
    lint_overhead = lint_seconds / off_seconds - 1.0

    # -- mid-path // expansion on the auction document ------------------------
    big_auction = generate_auction(EXPANSION_SCALE, seed=SEED)
    expansion = {}
    for scheme_name in ("edge", "interval"):
        with XmlRelStore.open(
            scheme=scheme_name, profile=PROFILE
        ) as plain, XmlRelStore.open(
            scheme=scheme_name, profile=PROFILE
        ) as expanded:
            plain_id = plain.store(big_auction, "auction")
            expanded_id = expanded.store(big_auction, "auction")
            expanded.enable_analysis(dtd=auction_dtd(), expand=True)

            baseline = {
                xpath: plain.query_pres(plain_id, xpath)
                for xpath in EXPANSION_QUERIES
            }
            for xpath in EXPANSION_QUERIES:  # prime both plan caches
                assert (
                    expanded.query_pres(expanded_id, xpath)
                    == baseline[xpath]
                ), f"{scheme_name}/{xpath}: expansion changed the result"

            started = time.perf_counter()
            for __ in range(EXPANSION_REPETITIONS):
                for xpath in EXPANSION_QUERIES:
                    plain.query_pres(plain_id, xpath)
            plain_seconds = time.perf_counter() - started
            started = time.perf_counter()
            for __ in range(EXPANSION_REPETITIONS):
                for xpath in EXPANSION_QUERIES:
                    expanded.query_pres(expanded_id, xpath)
            expanded_seconds = time.perf_counter() - started
            expansion[scheme_name] = {
                "seconds_plain": plain_seconds,
                "seconds_expanded": expanded_seconds,
                "speedup": plain_seconds / expanded_seconds,
            }

    # -- report ---------------------------------------------------------------
    result = ExperimentResult(
        experiment="E15",
        title="Static analysis: lint overhead and // expansion",
        workload=(
            f"auction sf=0.05 x {len(queries)} queries (lint); "
            f"auction sf={EXPANSION_SCALE} x "
            f"{len(EXPANSION_QUERIES)} mid-path '//' queries"
        ),
        expectation=(
            "cold lint overhead < 20% of translate time, ~0 warm; "
            "expanded '//' beats the recursive-CTE edge plan"
        ),
    )
    result.add_row(
        "translate sec (30x)",
        cold=off_seconds,
        warm=lint_seconds,
        speedup=1.0 + lint_overhead,
    )
    for scheme_name, stats in expansion.items():
        result.add_row(
            f"// on {scheme_name} (sec)",
            cold=stats["seconds_plain"],
            warm=stats["seconds_expanded"],
            speedup=stats["speedup"],
        )
    write_report(result)

    payload = {
        "experiment": "E15",
        "profile": PROFILE,
        "lint": {
            "queries": len(queries),
            "repetitions": LINT_REPETITIONS,
            "seconds_off": off_seconds,
            "seconds_default": lint_seconds,
            "overhead_fraction": lint_overhead,
            "seconds_warm_suite": warm_seconds,
        },
        "expansion": expansion,
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # -- acceptance -----------------------------------------------------------
    assert lint_overhead < 0.20, payload["lint"]
    # Warm lookups never re-lint: one warm suite pass costs a tiny
    # fraction of one cold pass.
    assert warm_seconds < (lint_seconds / LINT_REPETITIONS) * 0.5, (
        payload["lint"]
    )
    # Edge pays a recursive CTE per '//' query; the expanded child
    # chains must beat it.  Interval answers '//' straight off its name
    # index, so expansion only has to stay in the same ballpark there.
    assert expansion["edge"]["speedup"] > 1.2, expansion["edge"]
    assert expansion["interval"]["speedup"] > 0.2, expansion["interval"]
