"""A-series — ablations of the implementation's own design choices.

Each ablation switches one mechanism off and measures the same query:

* **A1 content cache** — value predicates on the cached text-only
  ``content`` column vs. going through the text-node rows
  (``[title = 'x']`` vs ``[title/text() = 'x']``) — the edge paper's
  "inlined values" choice.
* **A2 partition pruning** — the binary translator routed to the label
  partition vs. forced through the all-partitions view (what the scheme
  would be without its label catalog).
* **A3 semi-join rewrite** — point lookups with the uncorrelated
  IN-subquery rewrite vs. plain correlated EXISTS.
* **A4 dewey prefix range** — descendant steps as an index-usable string
  range vs. a LIKE pattern (which sqlite cannot range-seek here because
  the pattern is built from a column).
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report
from repro.core.registry import create_scheme
from repro.query.translate_binary import BinaryTranslator
from repro.query.translate_interval import IntervalTranslator
from repro.relational.database import Database
from repro.storage.binary import EDGES_VIEW
from repro.workloads import generate_dblp


@pytest.fixture(scope="module")
def dblp_pair():
    """(interval store, binary store) over the same 4000-record dblp."""
    document = generate_dblp(4000, seed=7)
    interval_db, binary_db = Database(), Database()
    interval = create_scheme("interval", interval_db)
    binary = create_scheme("binary", binary_db)
    interval_id = interval.store(document, "dblp").doc_id
    binary_id = binary.store(document, "dblp").doc_id
    yield (interval, interval_id), (binary, binary_id)
    interval_db.close()
    binary_db.close()


class _UnprunedBinaryTranslator(BinaryTranslator):
    """Binary translation with partition pruning disabled."""

    def step_table(self, step):
        return EDGES_VIEW

    def element_table(self, name):
        return EDGES_VIEW

    def attribute_table(self, name):
        return EDGES_VIEW

    def text_table(self):
        return EDGES_VIEW


class _NoSemiJoinIntervalTranslator(IntervalTranslator):
    """Interval translation with the IN-subquery rewrite disabled."""

    def _semi_join_rewrite(self, *args, **kwargs):
        return None


def _best_ms(translator, doc_id, query):
    return time_call(
        lambda: translator.query_pres(doc_id, query), repetitions=5
    ) * 1000


def test_a1_content_cache(benchmark, dblp_pair):
    (interval, doc_id), __ = dblp_pair
    translator = interval.translator()
    cached = "/dblp/inproceedings[booktitle = 'VLDB']/title"
    uncached = "/dblp/inproceedings[booktitle/text() = 'VLDB']/title"
    assert translator.query_pres(doc_id, cached) == translator.query_pres(
        doc_id, uncached
    )
    result = ExperimentResult(
        experiment="A1",
        title="Value predicate via content cache vs text-node rows (ms)",
        workload="dblp 4000 records, interval scheme",
        expectation="the cached column avoids one text-node join per probe",
    )
    with_cache = _best_ms(translator, doc_id, cached)
    without = _best_ms(translator, doc_id, uncached)
    result.add_row("content column", ms=with_cache)
    result.add_row("text() join", ms=without)
    write_report(result)
    benchmark(lambda: None)
    # Equal answers were asserted above; the cache must not be slower by
    # more than noise (it usually wins; both paths stay indexed).
    assert with_cache < without * 2


def test_a2_partition_pruning(benchmark, dblp_pair):
    __, (binary, doc_id) = dblp_pair
    pruned = binary.translator()
    unpruned = _UnprunedBinaryTranslator(binary)
    query = "/dblp/book/publisher"  # books are ~10% of records
    assert pruned.query_pres(doc_id, query) == unpruned.query_pres(
        doc_id, query
    )
    result = ExperimentResult(
        experiment="A2",
        title="Binary mapping with vs without partition pruning (ms)",
        workload="dblp 4000 records, label-selective path",
        expectation=(
            "pruning scans two small partitions; without it every step "
            "unions all partitions"
        ),
    )
    with_pruning = _best_ms(pruned, doc_id, query)
    without = _best_ms(unpruned, doc_id, query)
    result.add_row("pruned (partitions)", ms=with_pruning)
    result.add_row("unpruned (view)", ms=without)
    write_report(result)
    benchmark(lambda: None)
    assert with_pruning < without


def test_a3_semi_join_rewrite(benchmark, dblp_pair):
    (interval, doc_id), __ = dblp_pair
    with_rewrite = interval.translator()
    without_rewrite = _NoSemiJoinIntervalTranslator(interval)
    query = "/dblp/article[@key = 'article/8']/title"
    assert with_rewrite.query_pres(doc_id, query) == (
        without_rewrite.query_pres(doc_id, query)
    )
    result = ExperimentResult(
        experiment="A3",
        title="Point lookup with vs without the semi-join rewrite (ms)",
        workload="dblp 4000 records, interval scheme",
        expectation=(
            "the uncorrelated IN materializes one value-index probe; "
            "plain EXISTS probes per candidate row"
        ),
    )
    rewritten = _best_ms(with_rewrite, doc_id, query)
    plain = _best_ms(without_rewrite, doc_id, query)
    result.add_row("semi-join IN", ms=rewritten)
    result.add_row("correlated EXISTS", ms=plain)
    write_report(result)
    benchmark(lambda: None)
    assert rewritten <= plain * 1.5  # never meaningfully worse


def test_a4_dewey_prefix_range(benchmark):
    document = generate_dblp(4000, seed=7)
    with Database() as db:
        dewey = create_scheme("dewey", db)
        doc_id = dewey.store(document, "dblp").doc_id
        root_label = db.scalar(
            "SELECT label FROM dewey WHERE doc_id = ? AND parent_label "
            "IS NULL",
            (doc_id,),
        )
        range_sql = (
            "SELECT COUNT(*) FROM dewey WHERE doc_id = ? "
            "AND label > ? AND label < ? AND name = 'author'"
        )
        like_sql = (
            "SELECT COUNT(*) FROM dewey WHERE doc_id = ? "
            "AND label LIKE ? AND name = 'author'"
        )
        range_args = (doc_id, root_label + ".", root_label + "/")
        like_args = (doc_id, root_label + ".%")
        assert db.scalar(range_sql, range_args) == db.scalar(
            like_sql, like_args
        )
        range_ms = time_call(
            lambda: db.query(range_sql, range_args), repetitions=5
        ) * 1000
        like_ms = time_call(
            lambda: db.query(like_sql, like_args), repetitions=5
        ) * 1000
    result = ExperimentResult(
        experiment="A4",
        title="Dewey descendant scan: string range vs LIKE (ms)",
        workload="dblp 4000 records, all //author under the root",
        expectation=(
            "both filter identically; the explicit range states the "
            "index window directly and never depends on LIKE-prefix "
            "optimizability"
        ),
    )
    result.add_row("label range (> .., < ../)", ms=range_ms)
    result.add_row("label LIKE 'prefix.%'", ms=like_ms)
    write_report(result)
    benchmark(lambda: None)
    assert range_ms <= like_ms * 2
