"""E2 (Table 2) — document shredding (load) time per scheme.

Expected shape: the single-table mappings (edge, interval, dewey) load
fastest; binary pays per-label partition dispatch; universal pays
row-materialization of every leaf path; xrel pays the path table;
inlining is competitive (fewer, wider rows) after the one-off DTD
analysis.
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report
from repro.core.registry import create_scheme
from repro.relational.database import Database

from benchmarks.conftest import SCHEMES, scheme_kwargs


def _store_once(name, document):
    with Database() as db:
        scheme = create_scheme(name, db, **scheme_kwargs(name))
        scheme.store(document, "auction")


@pytest.mark.benchmark(group="e2-load-time", max_time=1.0, min_rounds=3)
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_e2_shred_time(benchmark, auction_documents, scheme_name):
    document = auction_documents[0.2]
    benchmark(_store_once, scheme_name, document)


def test_e2_report(benchmark, auction_documents):
    result = ExperimentResult(
        experiment="E2",
        title="Shredding (load) time per scheme (ms)",
        workload="auction documents, scale factors 0.05 / 0.2",
        expectation=(
            "single-table mappings fastest; binary pays partition "
            "dispatch; universal pays leaf-path materialization"
        ),
    )
    measured = {}
    for scheme_name in SCHEMES:
        row = result.add_row(scheme_name)
        for sf in (0.05, 0.2):
            document = auction_documents[sf]
            seconds = time_call(
                lambda d=document, n=scheme_name: _store_once(n, d)
            )
            measured[(scheme_name, sf)] = seconds
            row.set(f"sf={sf}", seconds * 1000)
    write_report(result)
    benchmark(lambda: None)

    # Loose shape assertions (wall-clock, so generous factors).
    assert measured[("universal", 0.2)] > measured[("interval", 0.2)]
    assert measured[("binary", 0.2)] > measured[("edge", 0.2)]
