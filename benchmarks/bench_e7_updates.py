"""E7 (Table 4) — update cost: insert a subtree early in the document.

A new person is inserted at the *front* of ``/site/people`` (front
insertion maximizes the following-sibling/following-node sets, which is
where the schemes diverge).  Reported per scheme: wall time, rows
inserted, rows updated.  Expected shape (the classic order-maintenance
trade-off):

* edge/binary — one ordinal bump per following sibling,
* dewey       — relabel following siblings' subtrees,
* interval    — renumber every node after the insertion point,
* xrel/universal/inlining — no update support (reported as such).
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report
from repro.core.registry import create_scheme
from repro.errors import UpdateError
from repro.relational.database import Database
from repro.updates import insert_subtree
from repro.workloads import generate_auction
from repro.xml import parse_fragment
from repro.xpath import evaluate_nodes

from benchmarks.conftest import SCHEMES, SEED, scheme_kwargs

UPDATABLE = ("edge", "binary", "interval", "dewey")

NEW_PERSON = (
    "<person id='personX'><name>New Person</name>"
    "<emailaddress>mailto:new@example.org</emailaddress></person>"
)


def _fresh_store(scheme_name, document):
    db = Database()
    scheme = create_scheme(scheme_name, db, **scheme_kwargs(scheme_name))
    doc_id = scheme.store(document, "auction").doc_id
    people_pre = evaluate_nodes(document, "/site/people")[0].order_key
    return db, scheme, doc_id, people_pre


def _front_insert(scheme_name, document):
    """(seconds, stats) of the insert alone, on a fresh store."""
    import time

    db, scheme, doc_id, people_pre = _fresh_store(scheme_name, document)
    try:
        fragment = parse_fragment(NEW_PERSON)
        started = time.perf_counter()
        stats = insert_subtree(
            scheme, doc_id, people_pre, fragment, index=0
        )
        return time.perf_counter() - started, stats
    finally:
        db.close()


@pytest.fixture(scope="module")
def update_document():
    return generate_auction(0.1, seed=SEED)


@pytest.mark.benchmark(group="e7-updates", max_time=1.0, min_rounds=3)
@pytest.mark.parametrize("scheme_name", UPDATABLE)
def test_e7_insert_time(benchmark, update_document, scheme_name):
    def setup():
        db, scheme, doc_id, people_pre = _fresh_store(
            scheme_name, update_document
        )
        fragment = parse_fragment(NEW_PERSON)
        return (scheme, doc_id, people_pre, fragment), {}

    def run(scheme, doc_id, people_pre, fragment):
        return insert_subtree(scheme, doc_id, people_pre, fragment, index=0)

    stats = benchmark.pedantic(run, setup=setup, rounds=5)
    assert stats.rows_inserted > 0


def test_e7_report(benchmark, update_document):
    result = ExperimentResult(
        experiment="E7",
        title="Insert-subtree cost (front of /site/people)",
        workload="auction sf=0.1, new person inserted at child index 0",
        expectation=(
            "rows updated: edge/binary ~ #siblings < dewey ~ sibling "
            "subtrees < interval ~ all following nodes"
        ),
    )
    rows_updated = {}
    for scheme_name in SCHEMES:
        row = result.add_row(scheme_name)
        if scheme_name not in UPDATABLE:
            row.set("supported", "no")
            continue
        seconds, stats = min(
            (_front_insert(scheme_name, update_document) for __ in range(3)),
            key=lambda pair: pair[0],
        )
        rows_updated[scheme_name] = stats.rows_updated
        row.set("supported", "yes")
        row.set("ms", seconds * 1000)
        row.set("rows inserted", stats.rows_inserted)
        row.set("rows updated", stats.rows_updated)
    write_report(result)
    benchmark(lambda: None)

    # The published ordering of update costs.
    assert (
        rows_updated["edge"]
        <= rows_updated["binary"]
        < rows_updated["dewey"]
        < rows_updated["interval"]
    )


def test_e7_unsupported_schemes(benchmark, update_document):
    def check():
        for scheme_name in ("xrel", "universal"):
            with Database() as db:
                scheme = create_scheme(scheme_name, db)
                doc_id = scheme.store(update_document, "auction").doc_id
                with pytest.raises(UpdateError):
                    insert_subtree(
                        scheme, doc_id, 1, parse_fragment(NEW_PERSON)
                    )

    benchmark.pedantic(check, rounds=1, iterations=1)
