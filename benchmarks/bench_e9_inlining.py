"""E9 (Table 5) — DTD inlining: schema structure per strategy.

Reproduces the shape of Shanmugasundaram et al.'s strategy comparison:
for each DTD, the number of relations, total columns, and fragmented
(own-relation) elements under basic / shared / hybrid inlining.

Expected shape: basic creates a relation per element (most relations);
shared collapses single-parent elements (far fewer); hybrid inlines the
merely-shared elements too (fewest relations, duplicated columns — so
*more columns per relation*).  Recursive DTDs keep their cycle elements
as relations under every strategy.
"""

import pytest

from repro.bench import ExperimentResult, write_report
from repro.storage.inlining import build_mapping
from repro.workloads import auction_dtd, dblp_dtd
from repro.xml.dtd import parse_dtd

RECURSIVE_DTD = """
<!ELEMENT book (title, author*)>
<!ATTLIST book id ID #REQUIRED>
<!ELEMENT author (name, book*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT name (#PCDATA)>
"""

DTDS = {
    "auction": auction_dtd,
    "dblp": dblp_dtd,
    "recursive": lambda: parse_dtd(RECURSIVE_DTD, root_name="book"),
}

STRATEGIES = ("basic", "shared", "hybrid")


def structure(dtd_factory, strategy):
    mapping = build_mapping(dtd_factory(), strategy)
    return {
        "relations": mapping.relation_count,
        "columns": mapping.total_columns,
        "fragmented": len(mapping.fragmented_elements()),
    }


def test_e9_report(benchmark):
    measurements = benchmark.pedantic(
        lambda: {
            (name, strategy): structure(factory, strategy)
            for name, factory in DTDS.items()
            for strategy in STRATEGIES
        },
        rounds=1,
        iterations=1,
    )
    result = ExperimentResult(
        experiment="E9",
        title="DTD inlining: relations/columns per strategy",
        workload="auction, dblp and recursive DTDs",
        expectation=(
            "relations: basic > shared >= hybrid; hybrid trades "
            "relations for duplicated columns"
        ),
    )
    for name in DTDS:
        row = result.add_row(name)
        for strategy in STRATEGIES:
            numbers = measurements[(name, strategy)]
            row.set(f"{strategy} rel", numbers["relations"])
            row.set(f"{strategy} col", numbers["columns"])
    write_report(result)

    for name in DTDS:
        basic = measurements[(name, "basic")]
        shared = measurements[(name, "shared")]
        hybrid = measurements[(name, "hybrid")]
        assert basic["relations"] > shared["relations"]
        assert shared["relations"] >= hybrid["relations"]
        # Hybrid duplicates inlined shared elements into every parent:
        # average relation width grows.
        assert (
            hybrid["columns"] / hybrid["relations"]
            >= shared["columns"] / shared["relations"]
        )


def test_e9_recursive_elements_stay_relations(benchmark):
    def check():
        mapping = build_mapping(
            parse_dtd(RECURSIVE_DTD, root_name="book"), "hybrid"
        )
        assert {"book", "author"} <= set(mapping.relations)
        return mapping

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_e9_shared_element_detection(benchmark):
    def check():
        # `name` is referenced by item, category and person in the
        # auction DTD: a relation under shared, inlined under hybrid.
        shared = build_mapping(auction_dtd(), "shared")
        hybrid = build_mapping(auction_dtd(), "hybrid")
        assert "name" in shared.relations
        assert "name" not in hybrid.relations
        return shared, hybrid

    benchmark.pedantic(check, rounds=1, iterations=1)
