"""E10 (Figure 5) — estimated vs. actual query cardinality.

The path summary estimates every structure-only query *exactly*; value
predicates carry model error.  Reported per query: actual count,
estimate, and the q-error max(est/act, act/est).  Expected shape:
q-error 1.0 on the structural class, bounded (single digits) on the
uniform-value predicates, worst on string matching (the 10 % guess).
"""

import pytest

from repro.bench import ExperimentResult, write_report
from repro.stats import build_summary, estimate_cardinality
from repro.xpath import evaluate_nodes

STRUCTURAL = [
    "/site/people/person",
    "/site/people/person/name",
    "//bidder",
    "//item/name",
    "/site/regions/africa/item",
    "//increase",
]

PREDICATED = [
    "/site/open_auctions/open_auction[initial > 100]",
    "/site/open_auctions/open_auction[initial > 180]",
    "/site/people/person[address]",
    "/site/people/person[not(phone)]",
    "/site/people/person[address/city = 'Berlin']",
]

STRING_MATCH = [
    "//item[contains(description, 'vintage')]",
]


def q_error(actual: float, estimate: float) -> float:
    if actual == 0 and estimate == 0:
        return 1.0
    if actual == 0 or estimate == 0:
        return float("inf")
    return max(actual / estimate, estimate / actual)


@pytest.fixture(scope="module")
def summary(auction_document):
    return build_summary(auction_document)


def test_e10_report(benchmark, auction_document, summary):
    def measure():
        rows = []
        for group, queries in (
            ("structural", STRUCTURAL),
            ("predicate", PREDICATED),
            ("string", STRING_MATCH),
        ):
            for query in queries:
                actual = len(evaluate_nodes(auction_document, query))
                estimate = estimate_cardinality(summary, query)
                rows.append((group, query, actual, estimate))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="E10",
        title="Estimated vs actual cardinality (path summary)",
        workload="auction sf=0.1",
        expectation=(
            "structural queries exact (q-error 1); uniform-value "
            "predicates within small q-error; contains() is a guess"
        ),
    )
    for group, query, actual, estimate in rows:
        result.add_row(query).set("class", group).set(
            "actual", actual
        ).set("estimate", round(estimate, 1)).set(
            "q-error", round(q_error(actual, estimate), 2)
        )
    write_report(result)

    for group, query, actual, estimate in rows:
        error = q_error(actual, estimate)
        if group == "structural":
            assert error == 1.0, query
        elif group == "predicate":
            assert error < 5.0, (query, error)


def test_e10_summary_size(benchmark, auction_document, summary):
    """The summary is tiny relative to the data (why optimizers can
    afford exhaustive path statistics on regular documents)."""
    def measure():
        return summary.path_count, summary.total_nodes

    paths, nodes = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert paths < nodes / 10
