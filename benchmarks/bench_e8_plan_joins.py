"""E8 (Figure 4) — generated SQL join count vs. path length.

A *structural* (timing-free) metric: the number of join clauses in the
translated statement, including joins hidden in EXISTS subqueries and
recursive CTEs.  Expected shape:

* edge/binary/interval/dewey — one join per step (linear in depth),
* universal — zero joins for any linear path (flat),
* xrel — joins only at predicated steps (flat for pure paths),
* inlining — strictly fewer joins than interval whenever hops are
  inlined by the DTD.
"""

import pytest

from repro.bench import ExperimentResult, write_report

from benchmarks.conftest import SCHEMES

DEPTH_QUERIES = {
    2: "/site/open_auctions",
    3: "/site/open_auctions/open_auction",
    4: "/site/open_auctions/open_auction/bidder",
    5: "/site/open_auctions/open_auction/bidder/increase",
}

PREDICATE_QUERY = (
    "/site/people/person[address/city = 'Berlin']/name"
)


def join_counts(stores):
    counts = {}
    for scheme_name in SCHEMES:
        scheme, doc_id = stores[scheme_name]
        translator = scheme.translator()
        for depth, query in DEPTH_QUERIES.items():
            counts[(scheme_name, depth)] = translator.join_count(
                doc_id, query
            )
        counts[(scheme_name, "pred")] = translator.join_count(
            doc_id, PREDICATE_QUERY
        )
    return counts


def test_e8_report(benchmark, auction_stores):
    counts = benchmark.pedantic(
        join_counts, args=(auction_stores,), rounds=1, iterations=1
    )
    result = ExperimentResult(
        experiment="E8",
        title="Generated SQL join count vs path length",
        workload="auction spine at depths 2-5 plus one predicated query",
        expectation=(
            "join-per-step schemes grow linearly; universal stays at "
            "zero; inlining below interval on DTD-inlined hops"
        ),
    )
    for scheme_name in SCHEMES:
        row = result.add_row(scheme_name)
        for depth in DEPTH_QUERIES:
            row.set(f"depth={depth}", counts[(scheme_name, depth)])
        row.set("predicated", counts[(scheme_name, "pred")])
    write_report(result)

    # Linear growth for the per-step join schemes.
    for scheme_name in ("edge", "interval", "dewey"):
        deltas = [
            counts[(scheme_name, d + 1)] - counts[(scheme_name, d)]
            for d in (2, 3, 4)
        ]
        assert all(delta >= 1 for delta in deltas), scheme_name
    # Universal: zero joins beyond its fixed path-table join.
    universal = [counts[("universal", d)] for d in DEPTH_QUERIES]
    assert universal[0] == universal[-1]
    # XRel: flat for pure paths (only the final alias is materialized).
    xrel = [counts[("xrel", d)] for d in DEPTH_QUERIES]
    assert xrel[0] == xrel[-1]
    # Inlining beats interval at every depth on this DTD.
    for depth in DEPTH_QUERIES:
        assert counts[("inlining", depth)] <= counts[("interval", depth)]
    assert counts[("inlining", 5)] < counts[("interval", 5)]
