"""E14 — hot-path fast lanes: plan cache, batched publishing, bulk load.

Three measurements, each against the slow path it replaces:

* **warm vs cold translation** — repeated XPath queries with the plan
  cache primed vs cleared before every call (cold pays
  parse → plan → AST → render each time);
* **reconstruction round-trips** — ``query_nodes`` must issue the same
  number of SQL statements regardless of result cardinality (verified
  by counting ``sql.statement`` spans, not by timing);
* **bulk vs per-document loading** — 100 documents through one
  :class:`~repro.storage.base.BulkSession` (one transaction, one
  deferred ``ANALYZE``) vs 100 standalone stores.

Besides the usual markdown table, the run writes the machine-readable
``benchmarks/results/BENCH_PR3.json`` consumed by the CI bench-smoke
job.
"""

import json
import os
import time

from repro.bench import ExperimentResult, write_report
from repro.core.registry import create_scheme
from repro.obs import Tracer
from repro.relational.database import Database
from repro.storage.base import BulkSession
from repro.workloads import generate_auction
from repro.xml.parser import parse_document

from benchmarks.conftest import PROFILE, SEED

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_PR3.json"
)

#: Translation-heavy queries of the auction workload: deep paths,
#: predicates, and a multi-arm union — the shapes whose parse/plan/render
#: cost the cache amortizes.
CACHED_QUERIES = (
    "/site/people/person[@id = 'person0']/name",
    "/site/open_auctions/open_auction/bidder[1]/increase",
    "/site/regions/africa/item/name | /site/regions/asia/item/name"
    " | /site/closed_auctions/closed_auction/price",
)

QUERY_REPETITIONS = 40
BULK_DOCUMENTS = 100


def _bulk_corpus():
    return [
        parse_document(
            f"<bib><book year='{1990 + i % 20}' id='b{i}'>"
            f"<title>Title {i}</title>"
            f"<author><last>Author{i}</last></author>"
            f"<price>{10 + i}</price></book></bib>"
        )
        for i in range(BULK_DOCUMENTS)
    ]


def test_e14_fastpaths(tmp_path):
    document = generate_auction(0.05, seed=SEED)

    # -- warm vs cold plan translation --------------------------------------
    db = Database(profile=PROFILE)
    scheme = create_scheme("interval", db)
    doc_id = scheme.store(document, "auction").doc_id

    def run_queries():
        for xpath in CACHED_QUERIES:
            scheme.query_pres(doc_id, xpath)

    cold_seconds = 0.0
    for __ in range(QUERY_REPETITIONS):
        db.plan_cache.clear()
        started = time.perf_counter()
        run_queries()
        cold_seconds += time.perf_counter() - started
    run_queries()  # prime the cache
    warm_seconds = 0.0
    for __ in range(QUERY_REPETITIONS):
        started = time.perf_counter()
        run_queries()
        warm_seconds += time.perf_counter() - started
    queries_run = QUERY_REPETITIONS * len(CACHED_QUERIES)
    cold_qps = queries_run / cold_seconds
    warm_qps = queries_run / warm_seconds
    warm_speedup = cold_seconds / warm_seconds
    cache_stats = db.plan_cache.stats()
    db.close()

    # -- reconstruction round-trips -----------------------------------------
    tracer = Tracer()
    traced_db = Database(profile=PROFILE, tracer=tracer)
    traced_scheme = create_scheme("interval", traced_db)
    traced_id = traced_scheme.store(document, "auction").doc_id

    def statements_for(xpath):
        before = len(tracer.spans_named("sql.statement"))
        nodes = traced_scheme.query_nodes(traced_id, xpath)
        after = len(tracer.spans_named("sql.statement"))
        return len(nodes), after - before

    narrow_results, narrow_stmts = statements_for(
        "/site/regions/africa/item/name"
    )
    wide_results, wide_stmts = statements_for("/site/people/person/name")
    traced_db.close()

    # -- bulk vs per-document loading ---------------------------------------
    corpus = _bulk_corpus()

    per_doc_db = Database(profile=PROFILE)
    per_doc_scheme = create_scheme("interval", per_doc_db)
    started = time.perf_counter()
    for position, doc in enumerate(corpus):
        per_doc_scheme.store(doc, f"doc-{position}")
    per_doc_seconds = time.perf_counter() - started
    per_doc_count = len(per_doc_scheme.catalog.list())
    per_doc_db.close()

    bulk_db = Database(profile=PROFILE)
    bulk_scheme = create_scheme("interval", bulk_db)
    started = time.perf_counter()
    with BulkSession(bulk_scheme) as session:
        for position, doc in enumerate(corpus):
            session.store(doc, f"doc-{position}")
    bulk_seconds = time.perf_counter() - started
    bulk_count = len(bulk_scheme.catalog.list())
    bulk_db.close()

    bulk_dps = BULK_DOCUMENTS / bulk_seconds
    per_doc_dps = BULK_DOCUMENTS / per_doc_seconds
    bulk_speedup = per_doc_seconds / bulk_seconds

    # -- report ---------------------------------------------------------------
    result = ExperimentResult(
        experiment="E14",
        title="Hot-path fast lanes (plan cache, batching, bulk load)",
        workload=(
            f"auction sf=0.05; {queries_run} queries; "
            f"{BULK_DOCUMENTS}-document corpus"
        ),
        expectation=(
            "warm cached queries >= 2x cold; statement count flat in "
            "result cardinality; bulk load >= 2x per-document stores"
        ),
    )
    result.add_row(
        "queries/sec", cold=cold_qps, warm=warm_qps, speedup=warm_speedup
    )
    result.add_row(
        "docs/sec", cold=per_doc_dps, warm=bulk_dps, speedup=bulk_speedup
    )
    result.add_row(
        "stmts/query", cold=narrow_stmts, warm=wide_stmts, speedup=1.0
    )
    write_report(result)

    payload = {
        "experiment": "E14",
        "scheme": "interval",
        "profile": PROFILE,
        "plan_cache": {
            "queries_per_sec_cold": cold_qps,
            "queries_per_sec_warm": warm_qps,
            "warm_speedup": warm_speedup,
            "hits": cache_stats["hits"],
            "misses": cache_stats["misses"],
        },
        "reconstruction": {
            "narrow_results": narrow_results,
            "narrow_statements": narrow_stmts,
            "wide_results": wide_results,
            "wide_statements": wide_stmts,
        },
        "bulk_load": {
            "documents": BULK_DOCUMENTS,
            "docs_per_sec_bulk": bulk_dps,
            "docs_per_sec_per_doc": per_doc_dps,
            "bulk_speedup": bulk_speedup,
        },
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # -- acceptance -----------------------------------------------------------
    assert warm_speedup >= 2.0, payload["plan_cache"]
    assert cache_stats["hits"] >= queries_run
    assert wide_results > narrow_results
    assert narrow_stmts == wide_stmts, payload["reconstruction"]
    assert per_doc_count == bulk_count == BULK_DOCUMENTS
    assert bulk_speedup >= 2.0, payload["bulk_load"]
