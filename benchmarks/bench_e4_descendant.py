"""E4 (Figure 2) — descendant (``//``) query latency vs. document size.

Query: ``//increase`` (every bid increase, anywhere).  Expected shape:
the interval mapping answers with one index-range predicate and the
dewey mapping with one label-prefix scan — both flat-ish in document
size for the *navigation* part — while the edge/binary mappings compute
a recursive transitive closure over the whole edge set, growing visibly
faster.  This is the tutorial's core argument for order encodings.
"""

import pytest

from repro.bench import ExperimentResult, time_call, write_report
from repro.core.registry import create_scheme
from repro.relational.database import Database

from benchmarks.conftest import SCALE_SWEEP, SCHEMES, scheme_kwargs

# Mid-path descendant: the closure cannot be avoided by label
# partitioning (a first-step //x could be answered from one
# partition without recursion).
QUERY = "/site/open_auctions//date"


@pytest.fixture(scope="module")
def sized_stores(auction_documents):
    """scheme -> {sf -> (scheme, doc_id)} across the scale sweep."""
    stores = {}
    databases = []
    for name in SCHEMES:
        per_scale = {}
        for sf in SCALE_SWEEP:
            db = Database()
            databases.append(db)
            scheme = create_scheme(name, db, **scheme_kwargs(name))
            result = scheme.store(auction_documents[sf], f"auction-{sf}")
            per_scale[sf] = (scheme, result.doc_id)
        stores[name] = per_scale
    yield stores
    for db in databases:
        db.close()


@pytest.mark.benchmark(group="e4-descendant", max_time=0.5, min_rounds=3)
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_e4_descendant_latency(benchmark, sized_stores, scheme_name):
    scheme, doc_id = sized_stores[scheme_name][SCALE_SWEEP[-1]]
    result = benchmark(scheme.query_pres, doc_id, QUERY)
    assert result


def test_e4_report(benchmark, sized_stores):
    result = ExperimentResult(
        experiment="E4",
        title=f"Descendant query latency vs document size ({QUERY}, ms)",
        workload=f"auction documents at scale factors {list(SCALE_SWEEP)}",
        expectation=(
            "edge/binary recursive closure grows fastest; interval "
            "(region) and dewey (prefix) stay near-flat"
        ),
    )
    measured = {}
    expected_counts = {}
    for scheme_name in SCHEMES:
        row = result.add_row(scheme_name)
        for sf in SCALE_SWEEP:
            scheme, doc_id = sized_stores[scheme_name][sf]
            seconds = time_call(
                lambda s=scheme, d=doc_id: s.query_pres(d, QUERY),
                repetitions=5,
            )
            measured[(scheme_name, sf)] = seconds
            row.set(f"sf={sf}", seconds * 1000)
            count = len(scheme.query_pres(doc_id, QUERY))
            assert expected_counts.setdefault(sf, count) == count
    write_report(result)
    benchmark(lambda: None)

    # Shape: at the largest size, the recursive-closure mappings lose to
    # the order-encoding mappings by a clear factor.
    largest = SCALE_SWEEP[-1]
    assert measured[("edge", largest)] > 2 * measured[("interval", largest)]
    assert measured[("binary", largest)] > 2 * measured[
        ("interval", largest)
    ]
    assert measured[("edge", largest)] > 2 * measured[("dewey", largest)]
