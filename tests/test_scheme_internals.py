"""Unit tests for scheme-internal helpers (xrel patterns, universal
labels, binary partitions, inlining mapping structure)."""

import pytest

from repro.errors import SchemaMappingError
from repro.query.translate_xrel import xrel_path_match
from repro.relational.database import Database
from repro.storage.binary import partition_table_name
from repro.storage.edge import edge_label, label_to_name
from repro.storage.inlining import (
    BASIC,
    DtdGraph,
    HYBRID,
    SHARED,
    build_mapping,
    decide_relations,
)
from repro.storage.inlining.scheme import InliningScheme
from repro.storage.numbering import NodeRecord
from repro.storage.universal import label_kind, label_name, node_label
from repro.xml import parse_document
from repro.xml.dom import NodeKind
from repro.xml.dtd import dtd_to_text, parse_dtd


class TestXRelPathMatch:
    def test_exact_child_chain(self):
        assert xrel_path_match("#/a#/b", "#/a#/b")
        assert not xrel_path_match("#/a#/b", "#/a#/b#/c")
        assert not xrel_path_match("#/a#/b", "#/a#/bb")

    def test_descendant_gap(self):
        assert xrel_path_match("#/a#//b", "#/a#/b")
        assert xrel_path_match("#/a#//b", "#/a#/x#/y#/b")
        assert not xrel_path_match("#/a#//b", "#/a#/xb")

    def test_leading_descendant(self):
        assert xrel_path_match("#//b", "#/b")
        assert xrel_path_match("#//b", "#/a#/b")

    def test_wildcard_single_component(self):
        assert xrel_path_match("#/a#/*#/c", "#/a#/b#/c")
        assert not xrel_path_match("#/a#/*#/c", "#/a#/b#/x#/c")

    def test_attribute_components(self):
        assert xrel_path_match("#/a#/@id", "#/a#/@id")
        assert not xrel_path_match("#/a#/@id", "#/a#/id")


class TestEdgeLabels:
    def make(self, kind, name=None, value=None):
        return NodeRecord(
            pre=1, post=1, size=0, level=1, kind=int(kind), name=name,
            value=value, parent_pre=0, ordinal=1, dewey="000001",
        )

    def test_element_and_attribute(self):
        assert edge_label(self.make(NodeKind.ELEMENT, "book")) == "book"
        assert edge_label(self.make(NodeKind.ATTRIBUTE, "id")) == "id"

    def test_reserved_labels(self):
        assert edge_label(self.make(NodeKind.TEXT)) == "#text"
        assert edge_label(self.make(NodeKind.COMMENT)) == "#comment"

    def test_pi_keeps_target(self):
        label = edge_label(
            self.make(NodeKind.PROCESSING_INSTRUCTION, "style")
        )
        assert label == "#pi:style"
        assert label_to_name(
            label, int(NodeKind.PROCESSING_INSTRUCTION)
        ) == "style"

    def test_roundtrip(self):
        for kind, name in (
            (NodeKind.ELEMENT, "a"),
            (NodeKind.ATTRIBUTE, "k"),
            (NodeKind.TEXT, None),
        ):
            record = self.make(kind, name)
            assert label_to_name(edge_label(record), int(kind)) == name


class TestBinaryPartitionNames:
    def test_deterministic(self):
        assert partition_table_name("book") == partition_table_name("book")

    def test_case_and_punctuation_do_not_collide(self):
        assert partition_table_name("Book") != partition_table_name("book")
        assert partition_table_name("a.b") != partition_table_name("a_b")

    def test_reserved_labels_usable(self):
        assert partition_table_name("#text").startswith("b_text_")

    def test_long_labels_truncated(self):
        name = partition_table_name("x" * 200)
        assert len(name) < 64


class TestUniversalLabels:
    def test_node_label_kinds(self):
        cases = {
            (int(NodeKind.ELEMENT), "a"): "a",
            (int(NodeKind.ATTRIBUTE), "k"): "@k",
            (int(NodeKind.TEXT), None): "#text",
            (int(NodeKind.COMMENT), None): "#comment",
        }
        for (kind, name), expected in cases.items():
            record = NodeRecord(
                pre=1, post=1, size=0, level=1, kind=kind, name=name,
                value=None, parent_pre=0, ordinal=1, dewey="000001",
            )
            assert node_label(record) == expected

    def test_label_kind_and_name_roundtrip(self):
        assert label_kind("@id") == int(NodeKind.ATTRIBUTE)
        assert label_name("@id") == "id"
        assert label_kind("#text") == int(NodeKind.TEXT)
        assert label_name("#text") is None
        assert label_kind("#pi:go") == int(
            NodeKind.PROCESSING_INSTRUCTION
        )
        assert label_name("#pi:go") == "go"
        assert label_kind("title") == int(NodeKind.ELEMENT)
        assert label_name("title") == "title"


RECURSIVE_DTD = (
    "<!ELEMENT book (title, author*)>"
    "<!ELEMENT author (name, book*)>"
    "<!ELEMENT title (#PCDATA)>"
    "<!ELEMENT name (#PCDATA)>"
)


class TestDtdGraph:
    def test_graph_structure(self):
        graph = DtdGraph.from_dtd(parse_dtd(RECURSIVE_DTD))
        assert graph.in_degree("title") == 1
        assert graph.set_valued() == {"author", "book"}
        assert graph.recursive() == {"book", "author"}
        assert graph.roots() == set()

    def test_undeclared_reference_rejected(self):
        with pytest.raises(SchemaMappingError, match="undeclared"):
            DtdGraph.from_dtd(parse_dtd("<!ELEMENT a (missing)>"))

    def test_strategy_monotonicity(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a, b*)><!ELEMENT a (c)><!ELEMENT b (c)>"
            "<!ELEMENT c (#PCDATA)>"
        )
        graph = DtdGraph.from_dtd(dtd)
        basic = decide_relations(graph, BASIC)
        shared = decide_relations(graph, SHARED)
        hybrid = decide_relations(graph, HYBRID)
        assert hybrid <= shared <= basic
        assert "c" in shared      # in-degree 2
        assert "c" not in hybrid  # merely shared -> inlined everywhere

    def test_unknown_strategy_rejected(self):
        graph = DtdGraph.from_dtd(parse_dtd("<!ELEMENT a EMPTY>"))
        with pytest.raises(SchemaMappingError, match="strategy"):
            decide_relations(graph, "turbo")


class TestInliningMapping:
    def test_positions_cover_inlined_elements(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a, b*)><!ELEMENT a (c?)>"
            "<!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>"
        )
        mapping = build_mapping(dtd, SHARED)
        assert set(mapping.relations) == {"r", "b"}
        r = mapping.relations["r"]
        assert set(r.positions) == {(), ("a",), ("a", "c")}
        assert r.positions[("a", "c")].content_column is not None

    def test_hybrid_duplicates_shared_positions(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a, b)><!ELEMENT a (c)><!ELEMENT b (c)>"
            "<!ELEMENT c (#PCDATA)>"
        )
        mapping = build_mapping(dtd, HYBRID)
        positions = mapping.positions_of_element("c")
        assert len(positions) == 2  # once under a, once under b

    def test_mixed_content_rejected(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em)*><!ELEMENT em EMPTY>")
        with pytest.raises(SchemaMappingError, match="mixed"):
            build_mapping(dtd, SHARED)

    def test_basic_strategy_not_storable(self):
        with Database() as db:
            with pytest.raises(SchemaMappingError, match="structural"):
                InliningScheme(
                    db, dtd=parse_dtd("<!ELEMENT a EMPTY>"),
                    strategy="basic",
                )


class TestInliningSchemePersistence:
    DTD_TEXT = (
        "<!ELEMENT bib (book*)><!ELEMENT book (title)>"
        "<!ATTLIST book id ID #REQUIRED>"
        "<!ELEMENT title (#PCDATA)>"
    )
    DOC = (
        "<bib><book id='b1'><title>One</title></book></bib>"
    )

    def test_reopen_rebuilds_mapping(self, tmp_path):
        path = str(tmp_path / "inline.db")
        with Database(path) as db:
            scheme = InliningScheme(db, dtd=parse_dtd(self.DTD_TEXT))
            doc_id = scheme.store(parse_document(self.DOC), "bib").doc_id
        with Database(path) as db:
            reopened = InliningScheme(db)  # no DTD passed: loads persisted
            assert reopened.query_pres(doc_id, "/bib/book/@id")
            titles = reopened.query_nodes(doc_id, "//title")
            assert [t.string_value for t in titles] == ["One"]

    def test_conflicting_schema_rejected(self, tmp_path):
        path = str(tmp_path / "inline.db")
        with Database(path) as db:
            InliningScheme(db, dtd=parse_dtd(self.DTD_TEXT))
        with Database(path) as db:
            with pytest.raises(SchemaMappingError, match="different"):
                InliningScheme(
                    db, dtd=parse_dtd("<!ELEMENT other EMPTY>")
                )

    def test_store_without_dtd_rejected(self):
        with Database() as db:
            scheme = InliningScheme(db)
            with pytest.raises(SchemaMappingError, match="no DTD"):
                scheme.store(parse_document(self.DOC), "bib")

    def test_nonconforming_document_rejected(self):
        with Database() as db:
            scheme = InliningScheme(db, dtd=parse_dtd(self.DTD_TEXT))
            bad = parse_document("<bib><magazine/></bib>")
            with pytest.raises(SchemaMappingError, match="not"):
                scheme.store(bad, "bad")

    def test_undeclared_attribute_rejected(self):
        with Database() as db:
            scheme = InliningScheme(db, dtd=parse_dtd(self.DTD_TEXT))
            bad = parse_document(
                "<bib><book id='b' bogus='x'><title>t</title></book></bib>"
            )
            with pytest.raises(SchemaMappingError, match="bogus"):
                scheme.store(bad, "bad")


class TestDtdSerialization:
    def test_roundtrip_structure(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a+, b?)><!ELEMENT a (#PCDATA)>"
            "<!ELEMENT b EMPTY>"
            '<!ATTLIST r kind (x | y) "x" id ID #REQUIRED>'
            '<!ENTITY who "World">'
        )
        again = parse_dtd(dtd_to_text(dtd))
        assert again.element_names() == dtd.element_names()
        assert str(again.elements["r"].model) == str(dtd.elements["r"].model)
        attrs = {a.name: a for a in again.attributes_of("r")}
        assert attrs["kind"].enumeration == ("x", "y")
        assert attrs["kind"].default_value == "x"
        assert again.general_entities["who"].value == "World"
