"""Hot-path fast lanes: plan cache, batched reconstruction, bulk loads.

Three families of differential tests pin the fast lanes to the slow
paths they replace:

* batched ``query_nodes`` / ``fetch_records_many`` must be byte-identical
  to per-``pre`` subtree reconstruction, for every scheme, on real
  workload documents;
* cached translations must execute identically to cold ones — including
  after the data-dependent schemes (universal, binary) change shape
  under an update or delete;
* a bulk-load session must produce the same stored documents as
  per-document stores, atomically.
"""

import pytest

from repro import XmlRelStore, parse_document, parse_fragment, serialize
from repro.errors import StorageError, UnsupportedQueryError
from repro.obs.trace import Tracer
from repro.updates import insert_subtree
from repro.workloads import (
    AUCTION_QUERIES,
    DBLP_QUERIES,
    auction_dtd,
    dblp_dtd,
    generate_auction,
    generate_dblp,
)
from tests.conftest import BIB_XML, SCHEMALESS_SCHEMES

ALL_SCHEMES = SCHEMALESS_SCHEMES + ["inlining"]

SCALE = 0.05
SEED = 42


@pytest.fixture(scope="module")
def auction_doc():
    return generate_auction(SCALE, seed=SEED)


@pytest.fixture(scope="module")
def dblp_doc():
    return generate_dblp(40, seed=SEED)


def open_scheme_store(name, workload="auction", tracer=None):
    kwargs = {}
    if name == "inlining":
        kwargs["dtd"] = (
            auction_dtd() if workload == "auction" else dblp_dtd()
        )
    return XmlRelStore.open(scheme=name, tracer=tracer, **kwargs)


class TestBatchedReconstruction:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_auction_queries_identical(self, scheme_name, auction_doc):
        with open_scheme_store(scheme_name, "auction") as store:
            doc_id = store.store(auction_doc, "auction")
            matched = 0
            for spec in AUCTION_QUERIES:
                try:
                    pres = store.query_pres(doc_id, spec.xpath)
                except UnsupportedQueryError:
                    continue
                batched = [
                    serialize(n) for n in store.query(doc_id, spec.xpath)
                ]
                per_pre = [
                    serialize(store.reconstruct_subtree(doc_id, pre))
                    for pre in pres
                ]
                assert batched == per_pre, spec.key
                matched += len(pres)
            assert matched > 0

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_dblp_queries_identical(self, scheme_name, dblp_doc):
        with open_scheme_store(scheme_name, "dblp") as store:
            doc_id = store.store(dblp_doc, "dblp")
            matched = 0
            for spec in DBLP_QUERIES:
                try:
                    pres = store.query_pres(doc_id, spec.xpath)
                except UnsupportedQueryError:
                    continue
                batched = [
                    serialize(n) for n in store.query(doc_id, spec.xpath)
                ]
                per_pre = [
                    serialize(store.reconstruct_subtree(doc_id, pre))
                    for pre in pres
                ]
                assert batched == per_pre, spec.key
                matched += len(pres)
            assert matched > 0

    @pytest.mark.parametrize("scheme_name", SCHEMALESS_SCHEMES)
    def test_fetch_records_many_equals_per_root(self, scheme_name):
        with open_scheme_store(scheme_name) as store:
            doc_id = store.store_text(BIB_XML, "bib")
            scheme = store.scheme
            pres = store.query_pres(doc_id, "//author")
            assert pres
            groups = scheme.fetch_records_many(doc_id, pres)
            for pre in pres:
                assert groups[pre] == scheme.fetch_records(
                    doc_id, root_pre=pre
                )

    @pytest.mark.parametrize(
        "scheme_name", ["interval", "dewey", "edge", "binary", "xrel"]
    )
    def test_more_roots_than_one_batch(self, scheme_name):
        # 150 result roots force at least two ROOT_BATCH chunks.
        xml = "<r>" + "<x>v</x>" * 150 + "</r>"
        with open_scheme_store(scheme_name) as store:
            doc_id = store.store_text(xml, "wide")
            pres = store.query_pres(doc_id, "/r/x")
            assert len(pres) == 150
            nodes = store.query(doc_id, "/r/x")
            assert [serialize(n) for n in nodes] == ["<x>v</x>"] * 150

    def test_missing_root_raises(self):
        with open_scheme_store("interval") as store:
            doc_id = store.store_text(BIB_XML, "bib")
            with pytest.raises(StorageError, match="no stored node"):
                store.scheme.reconstruct_subtrees(doc_id, [999999])

    def test_reconstruction_statement_count_is_flat(self):
        # The batched fast lane issues O(1) statements per query, not
        # O(N): a 2-result query and a 30+-result query must run the
        # same number of SQL statements.
        tracer = Tracer()
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text(BIB_XML, "bib")
            wide_id = store.store_text(
                "<r>" + "<x>v</x>" * 30 + "</r>", "wide"
            )

            def statements_for(target, xpath):
                before = len(tracer.spans_named("sql.statement"))
                nodes = store.query(target, xpath)
                return (
                    len(nodes),
                    len(tracer.spans_named("sql.statement")) - before,
                )

            narrow_n, narrow_stmts = statements_for(
                doc_id, "/bib/book/title"
            )
            wide_n, wide_stmts = statements_for(wide_id, "/r/x")
            assert narrow_n == 2 and wide_n == 30
            assert narrow_stmts == wide_stmts


class TestPlanCache:
    def test_warm_results_identical_to_cold(self):
        with open_scheme_store("interval") as store:
            doc_id = store.store_text(BIB_XML, "bib")
            xpath = "/bib/book[@year = '2000']/title"
            cold = store.query_pres(doc_id, xpath)
            warm = store.query_pres(doc_id, xpath)
            assert cold == warm
            stats = store.db.plan_cache.stats()
            assert stats["hits"] >= 1
            assert stats["misses"] >= 1

    def test_counters_reach_metrics(self):
        tracer = Tracer()
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text(BIB_XML, "bib")
            store.query_pres(doc_id, "//title")
            store.query_pres(doc_id, "//title")
            counters = tracer.metrics.snapshot()["counters"]
            assert counters["plan_cache.misses"] >= 1
            assert counters["plan_cache.hits"] >= 1

    def test_query_report_exposes_cache_state(self):
        with open_scheme_store("interval") as store:
            doc_id = store.store_text(BIB_XML, "bib")
            first = store.query_report(doc_id, "/bib/book/title")
            second = store.query_report(doc_id, "/bib/book/title")
            assert not first.cache_hit
            assert second.cache_hit
            assert second.pres == first.pres
            assert second.cache_hits > first.cache_hits
            assert "plan cache: hit" in second.format()

    def test_union_plans_cached(self):
        with open_scheme_store("interval") as store:
            doc_id = store.store_text(BIB_XML, "bib")
            xpath = "/bib/book/title | /bib/article/title"
            cold = store.query_pres(doc_id, xpath)
            warm = store.query_pres(doc_id, xpath)
            assert cold == warm and len(cold) == 3
            assert store.db.plan_cache.stats()["hits"] >= 1

    def test_universal_store_invalidates(self):
        # Universal bakes the known-label set into the SQL: an unknown
        # label compiles to an always-false plan.  Storing a document
        # that introduces the label must invalidate that cached plan.
        with open_scheme_store("universal") as store:
            first = store.store_text("<a><b>x</b></a>", "one")
            assert store.query_pres(first, "/a/c") == []
            second = store.store_text("<a><c>y</c></a>", "two")
            assert len(store.query_pres(second, "/a/c")) == 1

    def test_binary_update_invalidates(self):
        # insert_subtree can create a partition for a never-seen label;
        # cached plans that resolved the label to "no partition" go
        # stale and must be dropped.
        with open_scheme_store("binary") as store:
            doc_id = store.store_text("<a><b>x</b></a>", "doc")
            assert store.query_pres(doc_id, "/a/c") == []
            root_pre = store.query_pres(doc_id, "/a")[0]
            insert_subtree(
                store.scheme, doc_id, root_pre, parse_fragment("<c>z</c>")
            )
            assert len(store.query_pres(doc_id, "/a/c")) == 1

    def test_delete_invalidates_data_dependent_plans(self):
        with open_scheme_store("universal") as store:
            doc_id = store.store_text("<a><b>x</b></a>", "doc")
            epoch = store.scheme.plan_epoch
            store.query_pres(doc_id, "/a/b")
            store.delete(doc_id)
            assert store.scheme.plan_epoch > epoch

    def test_lru_eviction_is_bounded(self):
        with open_scheme_store("interval") as store:
            doc_id = store.store_text(BIB_XML, "bib")
            cache = store.db.plan_cache
            capacity = cache.capacity
            for i in range(capacity + 10):
                store.query_pres(doc_id, f"/bib/book[{(i % 9) + 1}]")
            assert len(cache) <= capacity


class TestBulkSession:
    DOCS = [
        "<bib><book year='1999'><title>A</title></book></bib>",
        "<bib><book year='2000'><title>B</title></book></bib>",
        "<bib><book year='2001'><title>C</title></book></bib>",
    ]

    def test_store_many_matches_individual_stores(self):
        with open_scheme_store("interval") as bulk, open_scheme_store(
            "interval"
        ) as single:
            docs = [parse_document(text) for text in self.DOCS]
            bulk_ids = bulk.store_many(
                docs, names=[f"d{i}" for i in range(len(docs))]
            )
            single_ids = [
                single.store(parse_document(text), f"d{i}")
                for i, text in enumerate(self.DOCS)
            ]
            assert bulk_ids == single_ids
            for bulk_id, single_id in zip(bulk_ids, single_ids):
                assert bulk.reconstruct_xml(
                    bulk_id
                ) == single.reconstruct_xml(single_id)
            assert len(bulk.documents()) == len(self.DOCS)

    def test_bulk_session_is_atomic(self):
        with open_scheme_store("interval") as store:
            with pytest.raises(RuntimeError, match="boom"):
                with store.bulk_session() as session:
                    for text in self.DOCS:
                        session.store(parse_document(text), "doc")
                    raise RuntimeError("boom")
            assert store.documents() == []
            # The store stays usable after the rollback.
            doc_id = store.store_text(self.DOCS[0], "after")
            assert store.query_pres(doc_id, "/bib/book/title")

    def test_bulk_counters_and_single_analyze(self):
        tracer = Tracer()
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            docs = [parse_document(text) for text in self.DOCS]
            store.store_many(docs)
            counters = tracer.metrics.snapshot()["counters"]
            assert counters["bulk.sessions"] == 1
            assert counters["bulk.documents"] == len(self.DOCS)
            # One deferred ANALYZE for the whole session, not one per doc.
            assert len(tracer.spans_named("analyze")) == 1

    def test_nested_session_rejected(self):
        with open_scheme_store("interval") as store:
            with store.bulk_session() as session:
                with pytest.raises(StorageError, match="already active"):
                    session.__enter__()

    def test_store_outside_session_rejected(self):
        with open_scheme_store("interval") as store:
            session = store.bulk_session()
            with pytest.raises(StorageError, match="not active"):
                session.store(parse_document(self.DOCS[0]))

    def test_store_many_name_mismatch(self):
        from repro.errors import XmlRelError

        with open_scheme_store("interval") as store:
            with pytest.raises(XmlRelError, match="name"):
                store.store_many(
                    [parse_document(self.DOCS[0])], names=["a", "b"]
                )
