"""Unit tests for serialization and the token/event stream."""

import pytest

from repro.errors import XmlRelError
from repro.xml import parse_document, serialize, serialize_pretty
from repro.xml.dom import deep_equal
from repro.xml.events import (
    Event,
    EventKind,
    build_tree,
    count_events,
    parse_events,
    stream_events,
)
from repro.xml.serialize import escape_attribute, escape_text


class TestEscaping:
    def test_text_escaping(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escaping(self):
        assert escape_attribute('a"b<c&d') == "a&quot;b&lt;c&amp;d"

    def test_attribute_whitespace_escaped(self):
        assert escape_attribute("a\tb\nc") == "a&#9;b&#10;c"


class TestSerialize:
    def test_empty_element_collapsed(self):
        doc = parse_document("<a></a>")
        assert serialize(doc) == "<a/>"

    def test_roundtrip_identity(self):
        src = '<r k="1"><a>x &amp; y</a><!--c--><?p d?><b z="&lt;"/></r>'
        doc = parse_document(src)
        assert deep_equal(doc, parse_document(serialize(doc)))

    def test_xml_declaration_option(self):
        doc = parse_document("<a/>")
        assert serialize(doc, xml_declaration=True).startswith("<?xml")

    def test_serialize_subtree(self):
        doc = parse_document("<r><a><b>x</b></a></r>")
        assert serialize(doc.root_element.find("a")) == "<a><b>x</b></a>"

    def test_pretty_is_structurally_equal(self):
        doc = parse_document('<r><a k="1"><b>text</b></a><c/></r>')
        pretty = serialize_pretty(doc)
        assert deep_equal(doc, parse_document(pretty), ignore_ws_text=True)
        assert "\n" in pretty

    def test_pretty_keeps_mixed_content_inline(self):
        doc = parse_document("<p>before <em>word</em> after</p>")
        pretty = serialize_pretty(doc)
        assert "before <em>word</em> after" in pretty


class TestEventStream:
    SRC = '<r k="v"><a>text</a><!--c--><?pi d?></r>'

    def test_event_sequence(self):
        doc = parse_document(self.SRC)
        kinds = [e.kind for e in stream_events(doc)]
        assert kinds == [
            EventKind.START_DOCUMENT,
            EventKind.START_ELEMENT,
            EventKind.ATTRIBUTE,
            EventKind.START_ELEMENT,
            EventKind.TEXT,
            EventKind.END_ELEMENT,
            EventKind.COMMENT,
            EventKind.PROCESSING_INSTRUCTION,
            EventKind.END_ELEMENT,
            EventKind.END_DOCUMENT,
        ]

    def test_roundtrip(self):
        doc = parse_document(self.SRC)
        rebuilt = build_tree(stream_events(doc))
        assert deep_equal(doc, rebuilt)

    def test_parse_events_shortcut(self):
        events = list(parse_events("<a><b/></a>"))
        names = [e.name for e in events if e.kind == EventKind.START_ELEMENT]
        assert names == ["a", "b"]

    def test_count_events(self):
        counts = count_events(parse_events("<a x='1'><b/>t</a>"))
        assert counts[EventKind.START_ELEMENT] == 2
        assert counts[EventKind.ATTRIBUTE] == 1
        assert counts[EventKind.TEXT] == 1

    def test_stream_subtree_without_document_events(self):
        doc = parse_document("<r><a/></r>")
        kinds = [e.kind for e in stream_events(doc.root_element)]
        assert kinds[0] == EventKind.START_ELEMENT
        assert EventKind.START_DOCUMENT not in kinds


class TestBuildTreeValidation:
    def test_unbalanced_end_rejected(self):
        events = [Event(EventKind.END_ELEMENT, name="a")]
        with pytest.raises(XmlRelError, match="without matching start"):
            build_tree(events)

    def test_open_elements_at_end_rejected(self):
        events = [Event(EventKind.START_ELEMENT, name="a")]
        with pytest.raises(XmlRelError, match="open elements"):
            build_tree(events)

    def test_mismatched_end_name_rejected(self):
        events = [
            Event(EventKind.START_ELEMENT, name="a"),
            Event(EventKind.END_ELEMENT, name="b"),
        ]
        with pytest.raises(XmlRelError, match="does not match"):
            build_tree(events)

    def test_attribute_after_content_rejected(self):
        events = [
            Event(EventKind.START_ELEMENT, name="a"),
            Event(EventKind.TEXT, value="t"),
            Event(EventKind.ATTRIBUTE, name="k", value="v"),
            Event(EventKind.END_ELEMENT, name="a"),
        ]
        with pytest.raises(XmlRelError, match="outside a start tag"):
            build_tree(events)

    def test_text_at_document_level_rejected(self):
        with pytest.raises(XmlRelError, match="document level"):
            build_tree([Event(EventKind.TEXT, value="x")])
