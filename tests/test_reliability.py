"""Reliability layer: durability profiles, retries, crash atomicity.

The atomicity suites sweep a fault over *every statement position* of
``store``/``delete``/the update primitives, for every registered
scheme, and assert the database is always in exactly one of two states:
untouched (rollback won) or fully updated (the fault landed after
commit) — never partial rows, never a dangling catalog entry.
"""

import sqlite3

import pytest

from repro.core.registry import available_schemes, create_scheme
from repro.errors import StorageError, TransientStorageError, UpdateError
from repro.relational.database import DURABILITY_PROFILES, Database
from repro.relational.retry import RetryPolicy, is_transient_error
from repro.reliability import (
    FaultInjected,
    FaultInjectingDatabase,
    SimulatedCrash,
)
from repro.updates import delete_subtree, insert_subtree
from repro.xml.dom import deep_equal
from repro.xml.parser import parse_document

from tests.conftest import BIB_DTD_XML

ALL_SCHEMES = available_schemes()
UPDATE_SCHEMES = ["edge", "binary", "interval", "dewey"]

SMALL_XML = (
    "<bib>"
    "<book year='1994'><title>TCP/IP</title><price>65.95</price></book>"
    "<book year='2000'><title>Data on the Web</title>"
    "<price>39.95</price></book>"
    "</bib>"
)

FRAGMENT_XML = "<book year='2003'><title>XML and RDBMS</title></book>"


def small_document():
    return parse_document(SMALL_XML)


def make_scheme(name, db):
    kwargs = {}
    if name == "inlining":
        kwargs["dtd"] = parse_document(BIB_DTD_XML).dtd
    return create_scheme(name, db, **kwargs)


def snapshot(db):
    """Every table's full contents, order-independent."""
    return {
        table: sorted(
            map(repr, db.query(f"SELECT * FROM {table}"))
        )
        for table in db.table_names()
    }


def assert_all_or_nothing(db, scheme, before, doc_name, original=None):
    """The crash-consistency invariant: the operation either never
    happened (state == *before*) or fully happened (the document is
    catalogued, verifies, and reconstructs)."""
    after = snapshot(db)
    if after == before:
        return "rolled-back"
    stored = {
        record.name: record.doc_id
        for record in scheme.catalog.list(scheme=scheme.name)
    }
    assert doc_name in stored, (
        "state changed but the document is not catalogued: "
        "partial effects leaked"
    )
    report = scheme.verify_document(stored[doc_name])
    assert report.ok, report.issues
    if original is not None:
        assert deep_equal(scheme.reconstruct(stored[doc_name]), original)
    return "committed"


class TestStoreAtomicity:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_fault_at_every_statement(self, scheme_name):
        document = small_document()
        outcomes = set()
        for n in range(1, 300):
            db = FaultInjectingDatabase()
            scheme = make_scheme(scheme_name, db)
            scheme.store(small_document(), "first")
            before = snapshot(db)
            db.fail_on(n)
            try:
                scheme.store(document, "second")
            except FaultInjected:
                outcomes.add(
                    assert_all_or_nothing(
                        db, scheme, before, "second", document
                    )
                )
                db.close()
            else:
                db.reset_faults()
                report = scheme.verify_document(
                    scheme.catalog.list(scheme=scheme.name)[-1].doc_id
                )
                assert report.ok, report.issues
                db.close()
                break
        else:
            pytest.fail("fault never stopped firing; sweep too short")
        # At least one injection point must have exercised rollback.
        assert "rolled-back" in outcomes

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_crash_mid_store_then_recover(self, scheme_name):
        db = FaultInjectingDatabase()
        scheme = make_scheme(scheme_name, db)
        scheme.store(small_document(), "first")
        before = snapshot(db)
        # Statement 1 is the catalog INSERT, statement 2 the first row
        # insert — always inside the store transaction.
        db.crash_on(2)
        with pytest.raises(SimulatedCrash):
            scheme.store(small_document(), "second")
        # Until recovery the connection refuses service.
        with pytest.raises(StorageError):
            scheme.store(small_document(), "third")
        db.recover()
        assert snapshot(db) == before
        doc_id = scheme.store(small_document(), "after-recovery").doc_id
        assert scheme.verify_document(doc_id).ok


class TestDeleteAtomicity:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_fault_at_every_statement(self, scheme_name):
        for n in range(1, 300):
            db = FaultInjectingDatabase()
            scheme = make_scheme(scheme_name, db)
            doc_id = scheme.store(small_document(), "victim").doc_id
            before = snapshot(db)
            db.fail_on(n)
            try:
                scheme.delete_document(doc_id)
            except FaultInjected:
                # Rollback must leave the document fully present...
                assert snapshot(db) == before
                db.reset_faults()
                assert scheme.verify_document(doc_id).ok
                db.close()
            else:
                # ...and completion must leave no trace of it.
                db.reset_faults()
                assert scheme.catalog.list(scheme=scheme.name) == []
                for table in scheme.table_names():
                    if table == "xmlrel_documents":
                        continue
                    count = db.scalar(
                        f"SELECT COUNT(*) FROM {table} "
                        "WHERE doc_id = ?",
                        (doc_id,),
                    ) if "doc_id" in [
                        r[1] for r in db.query(
                            f"PRAGMA table_info({table})"
                        )
                    ] else 0
                    assert count == 0, f"orphan rows in {table}"
                db.close()
                return
        pytest.fail("fault never stopped firing; sweep too short")


class TestUpdateAtomicity:
    @pytest.mark.parametrize("scheme_name", UPDATE_SCHEMES)
    def test_insert_subtree_fault_sweep(self, scheme_name):
        rolled_back = 0
        for n in range(1, 300):
            db = FaultInjectingDatabase()
            scheme = make_scheme(scheme_name, db)
            doc_id = scheme.store(small_document(), "doc").doc_id
            parent_pre = 1  # the root element
            before = snapshot(db)
            db.fail_on(n)
            fragment = parse_document(FRAGMENT_XML).root_element
            fragment.parent.remove_child(fragment)
            try:
                insert_subtree(scheme, doc_id, parent_pre, fragment, 0)
            except FaultInjected:
                assert snapshot(db) == before
                db.reset_faults()
                assert scheme.verify_document(doc_id).ok
                rolled_back += 1
                db.close()
            else:
                db.reset_faults()
                report = scheme.verify_document(doc_id)
                assert report.ok, report.issues
                db.close()
                break
        else:
            pytest.fail("fault never stopped firing; sweep too short")
        assert rolled_back > 0

    @pytest.mark.parametrize("scheme_name", UPDATE_SCHEMES)
    def test_delete_subtree_fault_sweep(self, scheme_name):
        for n in range(1, 300):
            db = FaultInjectingDatabase()
            scheme = make_scheme(scheme_name, db)
            doc_id = scheme.store(small_document(), "doc").doc_id
            # Delete the first book element (a mid-document subtree).
            victim = scheme.query_pres(doc_id, "/bib/book")[0]
            before = snapshot(db)
            db.fail_on(n)
            try:
                delete_subtree(scheme, doc_id, victim)
            except FaultInjected:
                assert snapshot(db) == before
                db.reset_faults()
                assert scheme.verify_document(doc_id).ok
                db.close()
            else:
                db.reset_faults()
                report = scheme.verify_document(doc_id)
                assert report.ok, report.issues
                assert scheme.query_pres(doc_id, "/bib/book") != []
                db.close()
                return
        pytest.fail("fault never stopped firing; sweep too short")


class TestRetryPolicy:
    def policy(self, attempts=5):
        sleeps = []
        return (
            RetryPolicy(
                max_attempts=attempts,
                base_delay=0.001,
                sleep=sleeps.append,
                seed=7,
            ),
            sleeps,
        )

    def test_transient_classification(self):
        assert is_transient_error(
            sqlite3.OperationalError("database is locked")
        )
        assert not is_transient_error(
            sqlite3.OperationalError("no such table: nope")
        )
        assert not is_transient_error(ValueError("x"))

    def test_busy_retried_until_success(self):
        policy, sleeps = self.policy()
        db = FaultInjectingDatabase(retry=policy)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(3)
        db.execute("INSERT INTO t VALUES (1)")
        assert db.scalar("SELECT COUNT(*) FROM t") == 1
        assert len(sleeps) == 3
        assert all(delay >= 0 for delay in sleeps)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.01, max_delay=0.05, jitter=0.0,
            sleep=lambda __: None,
        )
        delays = [policy.delay_for(k) for k in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_exhaustion_raises_transient_error(self):
        policy, __ = self.policy(attempts=3)
        db = FaultInjectingDatabase(retry=policy)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(99)
        with pytest.raises(TransientStorageError) as info:
            db.execute("INSERT INTO t VALUES (1)")
        assert info.value.attempts == 3
        db.reset_faults()
        assert db.scalar("SELECT COUNT(*) FROM t") == 0

    def test_no_policy_surfaces_transient_error_immediately(self):
        db = FaultInjectingDatabase()
        db.execute("CREATE TABLE t (x)")
        db.busy_next(1)
        with pytest.raises(TransientStorageError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_executemany_retry_does_not_duplicate(self):
        policy, __ = self.policy()
        db = FaultInjectingDatabase(retry=policy)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(2)
        db.executemany(
            "INSERT INTO t VALUES (?)", ((i,) for i in range(4))
        )
        assert db.scalar("SELECT COUNT(*) FROM t") == 4

    def test_run_transaction_retries_whole_block(self):
        policy, __ = self.policy(attempts=2)
        db = FaultInjectingDatabase(retry=policy)
        db.execute("CREATE TABLE t (x)")
        runs = []

        def block():
            runs.append(1)
            db.execute("INSERT INTO t VALUES (1)")
            if len(runs) == 1:
                # Exhaust the per-statement retry: the block itself
                # must then be rolled back and re-run from the top.
                db.busy_next(2)
            db.execute("INSERT INTO t VALUES (2)")

        db.run_transaction(block)
        assert len(runs) == 2
        assert db.query("SELECT x FROM t ORDER BY x") == [(1,), (2,)]


class TestNestedTransactions:
    def test_inner_rollback_preserves_outer(self, db):
        db.execute("CREATE TABLE t (x)")
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.execute("INSERT INTO t VALUES (2)")
                    raise RuntimeError("inner fails")
            db.execute("INSERT INTO t VALUES (3)")
        assert db.query("SELECT x FROM t ORDER BY x") == [(1,), (3,)]

    def test_outer_rollback_discards_released_inner(self, db):
        db.execute("CREATE TABLE t (x)")
        with pytest.raises(RuntimeError):
            with db.transaction():
                with db.transaction():
                    db.execute("INSERT INTO t VALUES (1)")
                raise RuntimeError("outer fails")
        assert db.query("SELECT x FROM t") == []

    def test_deep_nesting(self, db):
        db.execute("CREATE TABLE t (x)")
        with db.transaction():
            with db.transaction():
                with db.transaction():
                    db.execute("INSERT INTO t VALUES (1)")
        assert db.query("SELECT x FROM t") == [(1,)]
        assert not db.in_transaction


class TestDurabilityProfiles:
    def test_unknown_profile_rejected(self):
        with pytest.raises(StorageError, match="unknown durability"):
            Database(profile="yolo")

    @pytest.mark.parametrize(
        "profile,journal,synchronous",
        [
            ("bulk_load", "memory", 0),
            ("durable", "wal", 1),
            ("paranoid", "wal", 2),
        ],
    )
    def test_profile_pragmas(self, tmp_path, profile, journal, synchronous):
        with Database(
            str(tmp_path / f"{profile}.db"), profile=profile
        ) as db:
            assert db.scalar("PRAGMA journal_mode").lower() == journal
            assert db.scalar("PRAGMA synchronous") == synchronous
            assert db.profile == profile

    def test_every_profile_stores_and_verifies(self, tmp_path):
        from repro.core.store import XmlRelStore

        for profile in DURABILITY_PROFILES:
            path = str(tmp_path / f"store_{profile}.db")
            with XmlRelStore.open(
                path, scheme="interval", profile=profile
            ) as store:
                doc_id = store.store_text(SMALL_XML)
                assert store.verify(doc_id).ok
                assert store.query_xml(doc_id, "/bib/book/title")


class TestFileBytesGuard:
    def test_rejected_inside_transaction(self, db):
        db.execute("CREATE TABLE t (x)")
        with pytest.raises(StorageError, match="VACUUM"):
            with db.transaction():
                db.file_bytes()

    def test_fine_outside_transaction(self, db):
        db.execute("CREATE TABLE t (x)")
        assert db.file_bytes() > 0
