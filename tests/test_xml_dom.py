"""Unit tests for the tree data model (document order, mutation, equality)."""

import pytest

from repro.errors import XmlRelError
from repro.xml import parse_document
from repro.xml.dom import (
    Attribute,
    Comment,
    Document,
    Element,
    NodeKind,
    Text,
    deep_equal,
)


def build_sample():
    doc = Document()
    root = doc.append_child(Element("root"))
    a = root.append_child(Element("a", [("x", "1")]))
    a.append_text("text-a")
    b = root.append_child(Element("b"))
    b.append_child(Element("c"))
    return doc, root, a, b


class TestConstruction:
    def test_invalid_element_name_rejected(self):
        with pytest.raises(XmlRelError, match="invalid element name"):
            Element("1bad")

    def test_invalid_attribute_name_rejected(self):
        with pytest.raises(XmlRelError, match="invalid attribute name"):
            Attribute("no spaces", "v")

    def test_set_attribute_overwrites(self):
        e = Element("e")
        e.set_attribute("k", "1")
        e.set_attribute("k", "2")
        assert e.get_attribute("k") == "2"
        assert len(e.attributes) == 1

    def test_remove_attribute(self):
        e = Element("e", [("k", "1"), ("m", "2")])
        e.remove_attribute("k")
        assert e.get_attribute("k") is None
        assert e.get_attribute("m") == "2"

    def test_append_text_merges(self):
        e = Element("e")
        e.append_text("ab")
        e.append_text("cd")
        assert len(e.children) == 1
        assert e.text == "abcd"


class TestMutationRules:
    def test_cannot_attach_node_twice(self):
        doc, root, a, b = build_sample()
        with pytest.raises(XmlRelError, match="already has a parent"):
            b.append_child(a)

    def test_cannot_insert_under_self(self):
        doc, root, a, b = build_sample()
        c = b.children[0]
        doc.remove_child(root)
        with pytest.raises(XmlRelError, match="under itself"):
            c.append_child(root)

    def test_remove_child_detaches(self):
        doc, root, a, b = build_sample()
        root.remove_child(a)
        assert a.parent is None
        assert a not in root.children

    def test_remove_non_child_raises(self):
        doc, root, a, b = build_sample()
        with pytest.raises(XmlRelError, match="not a child"):
            a.remove_child(b)

    def test_insert_child_at_position(self):
        doc, root, a, b = build_sample()
        new = Element("mid")
        root.insert_child(1, new)
        assert [c.tag for c in root.child_elements()] == ["a", "mid", "b"]


class TestNavigation:
    def test_ancestors(self):
        doc, root, a, b = build_sample()
        c = b.children[0]
        assert list(c.ancestors()) == [b, root, doc]

    def test_depth(self):
        doc, root, a, b = build_sample()
        assert root.depth == 1
        assert b.children[0].depth == 3

    def test_document_property(self):
        doc, root, a, b = build_sample()
        assert b.children[0].document is doc
        detached = Element("x")
        assert detached.document is None

    def test_iter_preorder(self):
        doc, root, a, b = build_sample()
        tags = [n.tag for n in doc.iter() if isinstance(n, Element)]
        assert tags == ["root", "a", "b", "c"]

    def test_iter_elements_filter(self):
        doc = parse_document("<r><x/><y><x/></y></r>")
        assert len(list(doc.iter_elements("x"))) == 2

    def test_find_helpers(self):
        doc = parse_document("<r><a i='1'/><b/><a i='2'/></r>")
        root = doc.root_element
        assert root.find("a").get_attribute("i") == "1"
        assert [e.get_attribute("i") for e in root.find_all("a")] == ["1", "2"]
        assert root.find("zzz") is None


class TestDocumentOrder:
    def test_order_matches_document_layout(self):
        doc = parse_document('<r a="1"><x b="2">t</x><y/></r>')
        doc.assign_order()
        nodes = list(doc.iter_with_attributes())
        keys = [n.order_key for n in nodes]
        assert keys == sorted(keys)
        assert keys == list(range(len(nodes)))

    def test_attributes_ordered_after_element_before_children(self):
        doc = parse_document('<r a="1"><x/></r>')
        root = doc.root_element
        attr = root.attributes[0]
        child = root.children[0]
        assert root.precedes(attr)
        assert attr.precedes(child)

    def test_order_invalidated_by_mutation(self):
        doc, root, a, b = build_sample()
        assert a.precedes(b)
        root.remove_child(a)
        root.append_child(a)
        assert b.precedes(a)

    def test_detached_node_has_no_order(self):
        with pytest.raises(XmlRelError, match="detached"):
            Element("x").order_key


class TestStringValue:
    def test_element_string_value_concatenates_descendant_text(self):
        doc = parse_document("<r>a<b>b<c>c</c></b>d</r>")
        assert doc.root_element.string_value == "abcd"

    def test_document_string_value(self):
        doc = parse_document("<r>xy</r>")
        assert doc.string_value == "xy"

    def test_attribute_string_value(self):
        doc = parse_document('<r k="v"/>')
        assert doc.root_element.attributes[0].string_value == "v"


class TestDeepEqual:
    def test_equal_documents(self):
        a = parse_document("<r><x k='1'>t</x></r>")
        b = parse_document("<r><x k='1'>t</x></r>")
        assert deep_equal(a, b)

    def test_attribute_value_difference_detected(self):
        a = parse_document("<r k='1'/>")
        b = parse_document("<r k='2'/>")
        assert not deep_equal(a, b)

    def test_child_order_difference_detected(self):
        a = parse_document("<r><x/><y/></r>")
        b = parse_document("<r><y/><x/></r>")
        assert not deep_equal(a, b)

    def test_ignore_whitespace_mode(self):
        a = parse_document("<r>\n  <x/>\n</r>")
        b = parse_document("<r><x/></r>")
        assert not deep_equal(a, b)
        assert deep_equal(a, b, ignore_ws_text=True)

    def test_comment_and_pi_compared(self):
        a = parse_document("<r><!--c--><?p d?></r>")
        b = parse_document("<r><!--c--><?p d?></r>")
        c = parse_document("<r><!--other--><?p d?></r>")
        assert deep_equal(a, b)
        assert not deep_equal(a, c)


class TestRootElement:
    def test_root_element_ok(self):
        doc = parse_document("<!--c--><r/>")
        assert doc.root_element.tag == "r"

    def test_root_element_missing_raises(self):
        doc = Document()
        with pytest.raises(XmlRelError, match="expected 1"):
            doc.root_element

    def test_node_kinds(self):
        doc = parse_document("<r k='v'>t<!--c--><?p?></r>")
        r = doc.root_element
        assert doc.kind == NodeKind.DOCUMENT
        assert r.kind == NodeKind.ELEMENT
        assert r.attributes[0].kind == NodeKind.ATTRIBUTE
        kinds = {c.kind for c in r.children}
        assert kinds == {
            NodeKind.TEXT,
            NodeKind.COMMENT,
            NodeKind.PROCESSING_INSTRUCTION,
        }
