"""Cross-scheme storage tests: every mapping must shred, reconstruct,
and delete losslessly.  Parametrized over all seven schemes."""

import pytest

from repro.core.registry import available_schemes
from repro.errors import DocumentNotFoundError, StorageError
from repro.relational.database import Database
from repro.xml import parse_document
from repro.xml.dom import deep_equal
from repro.xml.parser import ParseOptions

from tests.conftest import BIB_DTD_XML, BIB_XML, make_scheme

ALL_SCHEMES = available_schemes()


def open_scheme(name, db):
    doc = parse_document(BIB_DTD_XML, ParseOptions(keep_whitespace=False))
    return make_scheme(name, db, dtd=doc.dtd), doc


@pytest.fixture(params=ALL_SCHEMES)
def scheme_and_doc(request):
    with Database() as db:
        yield open_scheme(request.param, db)


class TestRoundtrip:
    def test_store_reconstruct_roundtrip(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        result = scheme.store(doc, "bib")
        rebuilt = scheme.reconstruct(result.doc_id)
        assert deep_equal(doc, rebuilt)

    def test_node_count_recorded(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        result = scheme.store(doc, "bib")
        record = scheme.catalog.get(result.doc_id)
        assert record.node_count == result.node_count
        assert record.root_tag == "bib"
        assert record.scheme == scheme.name

    def test_subtree_reconstruction(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        result = scheme.store(doc, "bib")
        first_book = doc.root_element.find("book")
        node = scheme.reconstruct_subtree(
            result.doc_id, first_book.order_key
        )
        assert deep_equal(first_book, node)

    def test_attribute_subtree(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        result = scheme.store(doc, "bib")
        attr = doc.root_element.find("book").get_attribute_node("year")
        node = scheme.reconstruct_subtree(result.doc_id, attr.order_key)
        assert node.name == "year"
        assert node.value == "1994"

    def test_missing_subtree_rejected(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        result = scheme.store(doc, "bib")
        with pytest.raises(StorageError):
            scheme.reconstruct_subtree(result.doc_id, 10_000)

    def test_multiple_documents_isolated(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        first = scheme.store(doc, "one")
        second_doc = parse_document(
            BIB_DTD_XML, ParseOptions(keep_whitespace=False)
        )
        second = scheme.store(second_doc, "two")
        assert first.doc_id != second.doc_id
        assert deep_equal(doc, scheme.reconstruct(first.doc_id))
        assert deep_equal(second_doc, scheme.reconstruct(second.doc_id))

    def test_delete_document(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        kept = scheme.store(doc, "keep")
        gone_doc = parse_document(
            BIB_DTD_XML, ParseOptions(keep_whitespace=False)
        )
        gone = scheme.store(gone_doc, "gone")
        scheme.delete_document(gone.doc_id)
        with pytest.raises(DocumentNotFoundError):
            scheme.reconstruct(gone.doc_id)
        # The kept document is untouched.
        assert deep_equal(doc, scheme.reconstruct(kept.doc_id))

    def test_delete_unknown_rejected(self, scheme_and_doc):
        scheme, __ = scheme_and_doc
        with pytest.raises(DocumentNotFoundError):
            scheme.delete_document(123)

    def test_row_accounting(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        result = scheme.store(doc, "bib")
        assert result.total_rows > 0
        assert all(count >= 0 for count in result.row_counts.values())

    def test_storage_bytes_positive(self, scheme_and_doc):
        scheme, doc = scheme_and_doc
        scheme.store(doc, "bib")
        assert scheme.storage_bytes() > 0

    def test_empty_document_rejected(self, scheme_and_doc):
        scheme, __ = scheme_and_doc
        from repro.xml.dom import Document

        with pytest.raises(StorageError, match="empty document"):
            scheme.store(Document(), "empty")


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_whitespace_preserving_roundtrip(scheme_name):
    """Schemes that accept schema-less input must keep whitespace text.

    The inlining scheme intentionally drops whitespace-only text between
    element-content children (data-centric scope), so it is compared
    whitespace-insensitively.
    """
    with Database() as db:
        doc = parse_document(BIB_DTD_XML)  # whitespace kept
        scheme = make_scheme(scheme_name, db, dtd=doc.dtd)
        result = scheme.store(doc, "bib")
        rebuilt = scheme.reconstruct(result.doc_id)
        ignore_ws = scheme_name == "inlining"
        assert deep_equal(doc, rebuilt, ignore_ws_text=ignore_ws)


@pytest.mark.parametrize(
    "scheme_name",
    [n for n in ALL_SCHEMES if n not in ("inlining", "universal")],
)
def test_comments_and_pis_roundtrip(scheme_name):
    """Schema-less schemes must preserve comments and PIs."""
    src = "<r><!-- note --><a/><?target data?>text</r>"
    with Database() as db:
        doc = parse_document(src)
        scheme = make_scheme(scheme_name, db)
        result = scheme.store(doc, "doc")
        assert deep_equal(doc, scheme.reconstruct(result.doc_id))


def test_mixed_content_roundtrip_edge_like():
    """Mixed content (text interleaved with elements) survives the
    schema-less mappings."""
    src = "<p>one <em>two</em> three <b>four</b> five</p>"
    for scheme_name in ("edge", "binary", "interval", "dewey", "xrel"):
        with Database() as db:
            doc = parse_document(src)
            scheme = make_scheme(scheme_name, db)
            result = scheme.store(doc, "doc")
            assert deep_equal(doc, scheme.reconstruct(result.doc_id)), (
                scheme_name
            )


def test_deep_document_roundtrip():
    """A 60-level chain exercises numbering and reconstruction depth."""
    src = "".join(f"<n{i}>" for i in range(60)) + "x" + "".join(
        f"</n{i}>" for i in reversed(range(60))
    )
    for scheme_name in ("edge", "interval", "dewey"):
        with Database() as db:
            doc = parse_document(src)
            scheme = make_scheme(scheme_name, db)
            result = scheme.store(doc, "deep")
            assert deep_equal(doc, scheme.reconstruct(result.doc_id))


def test_wide_document_roundtrip():
    """A 500-sibling fanout exercises ordinal handling."""
    src = "<r>" + "".join(f"<c i='{i}'/>" for i in range(500)) + "</r>"
    for scheme_name in ("binary", "interval", "dewey", "xrel"):
        with Database() as db:
            doc = parse_document(src)
            scheme = make_scheme(scheme_name, db)
            result = scheme.store(doc, "wide")
            rebuilt = scheme.reconstruct(result.doc_id)
            assert deep_equal(doc, rebuilt), scheme_name
