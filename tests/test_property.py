"""Property-based tests (hypothesis) on the core invariants.

* parse → serialize → parse is the identity on trees,
* the event stream is a lossless linearization,
* Dewey labels: lexicographic order == document order, prefix == ancestor,
* interval encoding: the pre/size window is exactly the descendant set,
* content-model simplification only generalizes,
* all SQL translators agree with the reference evaluator on random
  documents × a pool of queries.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.registry import available_schemes
from repro.relational.database import Database
from repro.storage.numbering import (
    dewey_is_ancestor,
    number_document,
)
from repro.workloads.treegen import TreeProfile, generate_tree
from repro.xml import parse_document, serialize
from repro.xml.contentmodel import (
    ChoiceParticle,
    ContentModel,
    NameParticle,
    SequenceParticle,
    fields_accept,
    simplify,
)
from repro.xml.dom import (
    Document,
    Element,
    NodeKind,
    Text,
    deep_equal,
)
from repro.xml.events import build_tree, stream_events
from repro.xpath import evaluate_nodes

from tests.conftest import make_scheme

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

LABELS = ("a", "b", "c")
SAFE_TEXT = st.text(
    alphabet=st.characters(
        min_codepoint=0x20, max_codepoint=0xD7FF, exclude_characters="\r"
    ),
    min_size=1,
    max_size=12,
)


@st.composite
def elements(draw, depth: int):
    element = Element(draw(st.sampled_from(LABELS)))
    for name in ("k", "m"):
        if draw(st.booleans()):
            element.set_attribute(name, draw(SAFE_TEXT))
    if depth > 0 and draw(st.booleans()):
        for __ in range(draw(st.integers(0, 3))):
            element.append_child(draw(elements(depth=depth - 1)))
    elif draw(st.booleans()):
        element.append_text(draw(SAFE_TEXT))
    return element


@st.composite
def documents(draw):
    document = Document()
    document.append_child(draw(elements(depth=3)))
    return document


# ---------------------------------------------------------------------------
# Parser / serializer / events
# ---------------------------------------------------------------------------


class TestRoundtrips:
    @given(documents())
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_identity(self, document):
        assert deep_equal(document, parse_document(serialize(document)))

    @given(documents())
    @settings(max_examples=60, deadline=None)
    def test_event_stream_lossless(self, document):
        assert deep_equal(document, build_tree(stream_events(document)))

    @given(documents())
    @settings(max_examples=30, deadline=None)
    def test_double_serialize_stable(self, document):
        once = serialize(document)
        assert serialize(parse_document(once)) == once


# ---------------------------------------------------------------------------
# Numbering invariants
# ---------------------------------------------------------------------------


class TestNumberingInvariants:
    @given(documents())
    @settings(max_examples=40, deadline=None)
    def test_dewey_order_and_prefix(self, document):
        records = number_document(document)
        labels = [r.dewey for r in records]
        assert labels == sorted(labels)
        by_pre = {r.pre: r for r in records}
        for record in records:
            if record.parent_pre == 0:
                continue
            parent = by_pre[record.parent_pre]
            assert dewey_is_ancestor(parent.dewey, record.dewey)

    @given(documents())
    @settings(max_examples=40, deadline=None)
    def test_interval_window_is_descendant_set(self, document):
        records = number_document(document)
        by_pre = {r.pre: r for r in records}
        for record in records:
            window = {
                r.pre for r in records
                if record.pre < r.pre <= record.pre + record.size
            }
            # Compute true descendants via parent links.
            descendants = set()
            for other in records:
                current = other
                while current.parent_pre:
                    if current.parent_pre == record.pre:
                        descendants.add(other.pre)
                        break
                    current = by_pre[current.parent_pre]
            assert window == descendants

    @given(documents())
    @settings(max_examples=40, deadline=None)
    def test_post_order_consistent(self, document):
        records = number_document(document)
        by_pre = {r.pre: r for r in records}
        for record in records:
            if record.parent_pre:
                assert record.post < by_pre[record.parent_pre].post


# ---------------------------------------------------------------------------
# Content-model simplification
# ---------------------------------------------------------------------------


@st.composite
def particles(draw, depth: int):
    occurrence = draw(st.sampled_from(["", "?", "*", "+"]))
    if depth == 0 or draw(st.booleans()):
        return NameParticle(draw(st.sampled_from(LABELS)), occurrence)
    children = [
        draw(particles(depth=depth - 1))
        for __ in range(draw(st.integers(1, 3)))
    ]
    cls = SequenceParticle if draw(st.booleans()) else ChoiceParticle
    return cls(children, occurrence)


@st.composite
def words(draw):
    return [
        draw(st.sampled_from(LABELS))
        for __ in range(draw(st.integers(0, 6)))
    ]


class TestSimplificationProperty:
    @given(particles(depth=3), st.lists(words(), max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_simplified_accepts_everything_original_accepts(
        self, particle, candidates
    ):
        model = ContentModel.children(particle)
        fields = simplify(model)
        for word in candidates:
            if model.matches(word):
                assert fields_accept(fields, word), (
                    f"{model} accepts {word} but {fields} rejects it"
                )

    @given(particles(depth=3))
    @settings(max_examples=60, deadline=None)
    def test_simplification_quantifiers_valid(self, particle):
        fields = simplify(ContentModel.children(particle))
        names = [name for name, __ in fields]
        assert len(set(names)) == len(names)  # merged duplicates
        assert all(q in ("1", "?", "*") for __, q in fields)


# ---------------------------------------------------------------------------
# Differential: random documents × query pool × all schemes
# ---------------------------------------------------------------------------

QUERY_POOL = [
    "/root/a",
    "/root/*",
    "//a",
    "//b/c",
    "/root//c",
    "//a/@k",
    "//b/text()",
    "/root/a[b]",
    "//a[@k = 'v1']",
    "//b[c/text() = 'v2']",
    "//a[not(@m)]",
    "//c[contains(text(), 'v')]",
    "//a[@k and @m]",
]

SQL_SCHEMES = [n for n in available_schemes() if n != "inlining"]


@pytest.mark.parametrize("seed", range(8))
def test_differential_random_documents(seed):
    profile = TreeProfile(
        depth=4, min_fanout=1, max_fanout=3,
        labels=("a", "b", "c"), value_domain=4,
    )
    document = generate_tree(profile, seed=seed)
    expected = {
        q: sorted(
            n.order_key for n in evaluate_nodes(document, q)
            if n.order_key > 0
        )
        for q in QUERY_POOL
    }
    for scheme_name in SQL_SCHEMES:
        if scheme_name == "universal":
            continue  # wildcard/kind steps unsupported; covered elsewhere
        with Database() as db:
            scheme = make_scheme(scheme_name, db)
            doc_id = scheme.store(document, f"rand{seed}").doc_id
            for query, answer in expected.items():
                got = scheme.query_pres(doc_id, query)
                assert got == answer, (scheme_name, query)


@pytest.mark.parametrize("seed", range(4))
def test_differential_reconstruction(seed):
    profile = TreeProfile(depth=5, min_fanout=1, max_fanout=4)
    document = generate_tree(profile, seed=seed)
    for scheme_name in SQL_SCHEMES:
        if scheme_name == "universal":
            continue  # random trees are recursive; universal rejects them
        with Database() as db:
            scheme = make_scheme(scheme_name, db)
            doc_id = scheme.store(document, f"rand{seed}").doc_id
            assert deep_equal(document, scheme.reconstruct(doc_id)), (
                scheme_name
            )
