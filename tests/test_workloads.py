"""Tests for the synthetic workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    AUCTION_QUERIES,
    DBLP_QUERIES,
    TreeProfile,
    auction_dtd,
    dblp_dtd,
    generate_auction,
    generate_dblp,
    generate_tree,
)
from repro.workloads.queries import queries_by_category
from repro.xml.dom import Element, Text, deep_equal
from repro.xpath import evaluate, evaluate_nodes


class TestAuction:
    def test_deterministic(self):
        assert deep_equal(
            generate_auction(0.05, seed=9), generate_auction(0.05, seed=9)
        )

    def test_seed_changes_content(self):
        assert not deep_equal(
            generate_auction(0.05, seed=1), generate_auction(0.05, seed=2)
        )

    def test_scale_factor_scales_nodes(self):
        small = generate_auction(0.05, seed=1)
        large = generate_auction(0.2, seed=1)
        assert large.assign_order() > 2.5 * small.assign_order()

    def test_structure(self):
        doc = generate_auction(0.05, seed=1)
        site = doc.root_element
        assert [c.tag for c in site.child_elements()] == [
            "regions", "categories", "people", "open_auctions",
            "closed_auctions",
        ]
        assert len(evaluate_nodes(doc, "//person")) >= 2
        assert len(evaluate_nodes(doc, "//item")) >= 2

    def test_ids_unique(self):
        doc = generate_auction(0.05, seed=1)
        ids = [n.value for n in evaluate_nodes(doc, "//person/@id")]
        assert len(ids) == len(set(ids))

    def test_bidders_reference_people(self):
        doc = generate_auction(0.05, seed=1)
        people = {
            n.value for n in evaluate_nodes(doc, "//person/@id")
        }
        refs = {
            n.value for n in evaluate_nodes(doc, "//personref/@person")
        }
        assert refs <= people

    def test_validates_against_dtd(self):
        doc = generate_auction(0.05, seed=4)
        dtd = auction_dtd()
        failures = []
        for element in doc.iter_elements():
            decl = dtd.elements.get(element.tag)
            if decl is None:
                failures.append(element.tag)
                continue
            child_names = [
                c.tag for c in element.children if isinstance(c, Element)
            ]
            if not decl.model.matches(child_names):
                failures.append((element.tag, child_names))
        assert not failures

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            generate_auction(0)


class TestDblp:
    def test_record_count(self):
        doc = generate_dblp(200, seed=1)
        assert len(doc.root_element.child_elements()) == 200

    def test_deterministic(self):
        assert deep_equal(generate_dblp(50, seed=3), generate_dblp(50, seed=3))

    def test_keys_unique(self):
        doc = generate_dblp(100, seed=1)
        keys = [n.value for n in evaluate_nodes(doc, "/dblp/*/@key")]
        assert len(set(keys)) == 100

    def test_kinds_and_fields(self):
        doc = generate_dblp(300, seed=1)
        articles = evaluate_nodes(doc, "/dblp/article")
        assert articles, "weights guarantee articles at 300 records"
        assert all(e.find("journal") is not None for e in articles)
        books = evaluate_nodes(doc, "/dblp/book")
        assert all(e.find("publisher") is not None for e in books)

    def test_validates_against_dtd(self):
        doc = generate_dblp(100, seed=2)
        dtd = dblp_dtd()
        for element in doc.iter_elements():
            decl = dtd.elements[element.tag]
            child_names = [
                c.tag for c in element.children if isinstance(c, Element)
            ]
            assert decl.model.matches(child_names), element.tag

    def test_bad_count_rejected(self):
        with pytest.raises(WorkloadError):
            generate_dblp(0)


class TestTreegen:
    def test_deterministic(self):
        profile = TreeProfile()
        assert deep_equal(
            generate_tree(profile, seed=5), generate_tree(profile, seed=5)
        )

    def test_depth_bounded(self):
        profile = TreeProfile(depth=3)
        doc = generate_tree(profile, seed=1)
        assert max(
            e.depth for e in doc.iter_elements()
        ) <= profile.depth + 1  # +1 for the fixed root

    def test_text_only_at_leaves(self):
        doc = generate_tree(TreeProfile(depth=5), seed=2)
        for element in doc.iter_elements():
            has_elements = any(
                isinstance(c, Element) for c in element.children
            )
            has_text = any(isinstance(c, Text) for c in element.children)
            assert not (has_elements and has_text)

    def test_value_domain(self):
        profile = TreeProfile(value_domain=2, depth=5, max_fanout=5)
        doc = generate_tree(profile, seed=3)
        values = {
            n.data for n in doc.iter() if isinstance(n, Text)
        }
        assert values <= {"v0", "v1"}

    def test_invalid_profiles_rejected(self):
        with pytest.raises(WorkloadError):
            TreeProfile(depth=0).validate()
        with pytest.raises(WorkloadError):
            TreeProfile(min_fanout=3, max_fanout=2).validate()
        with pytest.raises(WorkloadError):
            TreeProfile(labels=()).validate()
        with pytest.raises(WorkloadError):
            TreeProfile(value_domain=0).validate()


class TestQuerySets:
    def test_auction_queries_evaluate(self):
        doc = generate_auction(0.05, seed=1)
        for spec in AUCTION_QUERIES:
            evaluate(doc, spec.xpath)  # must parse and run

    def test_dblp_queries_evaluate(self):
        doc = generate_dblp(100, seed=1)
        for spec in DBLP_QUERIES:
            evaluate(doc, spec.xpath)

    def test_keys_unique(self):
        keys = [spec.key for spec in AUCTION_QUERIES + DBLP_QUERIES]
        assert len(keys) == len(set(keys))

    def test_category_filter(self):
        paths = queries_by_category(AUCTION_QUERIES, "path")
        assert {spec.key for spec in paths} >= {"Q1", "Q2", "Q3"}

    def test_point_queries_return_single_result(self):
        doc = generate_auction(0.05, seed=1)
        for spec in queries_by_category(AUCTION_QUERIES, "point"):
            assert len(evaluate_nodes(doc, spec.xpath)) == 1
