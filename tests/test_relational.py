"""Unit tests for the relational substrate (schema, SQL builder, db)."""

import math

import pytest

from repro.errors import DocumentNotFoundError, StorageError
from repro.relational.catalog import Catalog
from repro.relational.database import Database
from repro.relational.schema import (
    Column,
    ForeignKey,
    INTEGER,
    Index,
    REAL,
    Table,
    TEXT,
    quote_identifier,
)
from repro.relational.sql import (
    And,
    Arith,
    Col,
    Comparison,
    Exists,
    Func,
    InList,
    Like,
    Not,
    Or,
    Param,
    Raw,
    ScalarSubquery,
    Select,
    Union,
    WithQuery,
    like_escape,
)


@pytest.fixture()
def db():
    with Database() as database:
        yield database


SAMPLE = Table(
    name="sample",
    columns=[
        Column("id", INTEGER, primary_key=True),
        Column("name", TEXT, nullable=False),
        Column("score", REAL),
    ],
    indexes=[Index("sample_name", "sample", ("name",))],
)


class TestSchema:
    def test_ddl_shape(self):
        ddl = SAMPLE.ddl()
        assert "CREATE TABLE IF NOT EXISTS sample" in ddl
        assert "id INTEGER PRIMARY KEY" in ddl
        assert "name TEXT NOT NULL" in ddl

    def test_create_and_insert(self, db):
        db.create_table(SAMPLE)
        db.insert_rows(SAMPLE, [(1, "a", 0.5), (2, "b", None)])
        assert db.row_count("sample") == 2

    def test_composite_primary_key(self, db):
        table = Table(
            "pair",
            [Column("x", INTEGER), Column("y", INTEGER)],
            primary_key=("x", "y"),
        )
        db.create_table(table)
        db.insert_rows(table, [(1, 2)])
        with pytest.raises(StorageError):
            db.insert_rows(table, [(1, 2)])

    def test_foreign_key_ddl(self):
        table = Table(
            "child",
            [Column("id", INTEGER), Column("parent", INTEGER)],
            foreign_keys=[ForeignKey(("parent",), "sample", ("id",))],
        )
        assert "FOREIGN KEY (parent) REFERENCES sample (id)" in table.ddl()

    def test_duplicate_columns_rejected(self):
        with pytest.raises(StorageError, match="duplicate column"):
            Table("t", [Column("a"), Column("a")])

    def test_bad_pk_column_rejected(self):
        with pytest.raises(StorageError, match="primary key"):
            Table("t", [Column("a")], primary_key=("b",))

    def test_unknown_type_rejected(self):
        with pytest.raises(StorageError, match="unknown column type"):
            Column("x", "BLOB8")

    def test_quote_identifier(self):
        assert quote_identifier("plain_name") == "plain_name"
        assert quote_identifier("weird name") == '"weird name"'
        assert quote_identifier('with"quote') == '"with""quote"'

    def test_insert_sql(self):
        assert SAMPLE.insert_sql() == (
            "INSERT INTO sample (id, name, score) VALUES (?, ?, ?)"
        )


class TestDatabase:
    def test_scalar_and_query_one(self, db):
        assert db.scalar("SELECT 1 + 1") == 2
        assert db.query_one("SELECT 1 WHERE 0") is None

    def test_transaction_commit(self, db):
        db.create_table(SAMPLE)
        with db.transaction():
            db.insert_rows(SAMPLE, [(1, "a", None)])
        assert db.row_count("sample") == 1

    def test_transaction_rollback(self, db):
        db.create_table(SAMPLE)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert_rows(SAMPLE, [(1, "a", None)])
                raise RuntimeError("boom")
        assert db.row_count("sample") == 0

    def test_table_names_and_exists(self, db):
        db.create_table(SAMPLE)
        assert "sample" in db.table_names()
        assert db.table_exists("sample")
        assert not db.table_exists("nope")

    def test_table_bytes(self, db):
        db.create_table(SAMPLE)
        db.insert_rows(SAMPLE, [(1, "abcd", None)])
        # '1' + 'abcd' + nothing for NULL = 5 logical bytes.
        assert db.table_bytes("sample") == 5

    def test_table_bytes_missing_table(self, db):
        with pytest.raises(StorageError, match="no such table"):
            db.table_bytes("ghost")

    def test_sql_error_carries_statement(self, db):
        with pytest.raises(StorageError, match="SELECT nonsense"):
            db.execute("SELECT nonsense FROM nothing")

    def test_xpath_num_udf(self, db):
        assert db.scalar("SELECT xpath_num(' 42 ')") == 42.0
        assert db.scalar("SELECT xpath_num('4.5')") == 4.5
        assert db.scalar("SELECT xpath_num('abc')") is None
        assert db.scalar("SELECT xpath_num(NULL)") is None

    def test_explain_plan(self, db):
        db.create_table(SAMPLE)
        lines = db.explain_plan("SELECT * FROM sample WHERE name = ?", ("x",))
        assert any("sample" in line for line in lines)


class TestSqlBuilder:
    def test_basic_select(self):
        query = (
            Select()
            .from_table("t", "a")
            .select(Col("x", "a"))
            .where(Col("y", "a").eq(Param(3)))
            .order_by(Col("x", "a"))
        )
        sql, params = query.render()
        assert sql == "SELECT a.x\nFROM t AS a\nWHERE a.y = ?\nORDER BY a.x"
        assert params == [3]

    def test_join_and_distinct(self):
        query = (
            Select()
            .from_table("t", "a")
            .join("t", "b", Col("p", "b").eq(Col("q", "a")))
            .select(Col("x", "b"))
        )
        query.distinct = True
        sql, params = query.render()
        assert "SELECT DISTINCT b.x" in sql
        assert "JOIN t AS b ON b.p = a.q" in sql

    def test_param_order_across_clauses(self):
        query = (
            Select()
            .from_table("t", "a")
            .join("t", "b", Col("p", "b").eq(Param("join-param")))
            .select(Col("x", "a"))
            .where(Col("y", "a").eq(Param("where-param")))
        )
        __, params = query.render()
        assert params == ["join-param", "where-param"]

    def test_boolean_composition(self):
        expr = Or((
            And((Raw("1"), Raw("2"))),
            Not(Raw("3")),
        ))
        assert expr.render([]) == "((1 AND 2) OR NOT (3))"

    def test_empty_and_or(self):
        assert And(()).render([]) == "1"
        assert Or(()).render([]) == "0"

    def test_like_with_escape(self):
        params: list = []
        text = Like(Col("v"), "%abc\\%%").render(params)
        assert text == "v LIKE ? ESCAPE '\\'"
        assert params == ["%abc\\%%"]

    def test_like_escape_helper(self):
        assert like_escape("50%_done\\x") == "50\\%\\_done\\\\x"

    def test_in_list(self):
        params: list = []
        text = InList(Col("v"), (1, 2, 3)).render(params)
        assert text == "v IN (?, ?, ?)"
        assert params == [1, 2, 3]

    def test_exists_subquery(self):
        sub = (
            Select().from_table("t", "s").select(Raw("1"))
            .where(Col("k", "s").eq(Param(9)))
        )
        params: list = []
        text = Exists(sub).render(params)
        assert text.startswith("EXISTS (SELECT 1")
        assert params == [9]

    def test_scalar_subquery(self):
        sub = Select().from_table("t", "s").select(Raw("COUNT(*)"))
        text = ScalarSubquery(sub).eq(Raw("0")).render([])
        assert text == "(SELECT COUNT(*)\nFROM t AS s) = 0"

    def test_func_and_cast_and_arith(self):
        expr = Func("xpath_num", (Arith("||", Col("a"), Col("b")),))
        assert expr.render([]) == "xpath_num((a || b))"

    def test_limit(self):
        sql, __ = (
            Select().from_table("t").select(Raw("*")).limit(5).render()
        )
        assert sql.endswith("LIMIT 5")

    def test_join_count_with_subqueries(self):
        sub = Select().from_table("t", "s").select(Raw("1"))
        query = (
            Select()
            .from_table("t", "a")
            .join("t", "b", Raw("1"))
            .select(Col("x", "a"))
            .where(Exists(sub))
        )
        assert query.join_count == 2  # one JOIN + one subquery FROM

    def test_union(self):
        one = Select().from_table("t", "a").select(Col("x", "a"))
        two = Select().from_table("u", "b").select(Col("y", "b"))
        sql, __ = Union((one, two)).render()
        assert "UNION ALL" in sql

    def test_with_query_renders_ctes_in_order(self):
        base = (
            Select().from_table("t", "a").select(Col("x", "a"))
            .where(Col("k", "a").eq(Param("first")))
        )
        final = (
            Select().from_table("c0", "c0").select(Col("x", "c0"))
            .where(Col("x", "c0").eq(Param("second")))
        )
        statement = WithQuery()
        statement.add_cte("c0", base)
        statement.final = final
        sql, params = statement.render()
        assert sql.startswith("WITH c0 AS (")
        assert params == ["first", "second"]

    def test_recursive_with_executes(self, db):
        links = Table(
            "links", [Column("src", INTEGER), Column("dst", INTEGER)]
        )
        db.create_table(links)
        db.insert_rows(links, [(1, 2), (2, 3), (3, 4), (9, 10)])
        statement = WithQuery(recursive=True)
        closure = Union((
            Select().from_table("links", "l").select(Col("dst", "l"))
            .where(Col("src", "l").eq(Param(1))),
            Select().from_table("links", "l").select(Col("dst", "l"))
            .join("reach", "r", Col("src", "l").eq(Col("dst", "r"))),
        ))
        statement.add_cte("reach", closure)
        statement.final = (
            Select().from_table("reach", "reach").select(Raw("COUNT(*)"))
        )
        sql, params = statement.render()
        assert db.scalar(sql, params) == 3  # nodes 2, 3, 4


class TestCatalog:
    def test_register_and_get(self, db):
        catalog = Catalog(db)
        doc_id = catalog.register("doc.xml", "edge", "root", 10)
        record = catalog.get(doc_id)
        assert record.name == "doc.xml"
        assert record.scheme == "edge"
        assert record.node_count == 10

    def test_missing_document(self, db):
        catalog = Catalog(db)
        with pytest.raises(DocumentNotFoundError):
            catalog.get(99)

    def test_list_filter_by_scheme(self, db):
        catalog = Catalog(db)
        catalog.register("a", "edge", "r", 1)
        catalog.register("b", "dewey", "r", 1)
        assert [r.name for r in catalog.list()] == ["a", "b"]
        assert [r.name for r in catalog.list("edge")] == ["a"]

    def test_remove(self, db):
        catalog = Catalog(db)
        doc_id = catalog.register("a", "edge", "r", 1)
        catalog.remove(doc_id)
        with pytest.raises(DocumentNotFoundError):
            catalog.get(doc_id)

    def test_update_node_count(self, db):
        catalog = Catalog(db)
        doc_id = catalog.register("a", "edge", "r", 1)
        catalog.update_node_count(doc_id, 5)
        assert catalog.get(doc_id).node_count == 5
