"""``store.verify`` — the per-scheme integrity audit.

Two halves: every workload document must audit clean under every
scheme, and a deliberately corrupted row in each scheme's tables must
be detected (the shredded analogue of flipping a bit on disk and
running ``PRAGMA integrity_check``).
"""

import pytest

from repro.core.registry import available_schemes
from repro.core.store import XmlRelStore, open_store
from repro.errors import StorageError
from repro.relational.database import Database
from repro.workloads import auction_dtd, generate_auction

from tests.conftest import BIB_DTD_XML, make_scheme
from repro.xml.parser import parse_document

ALL_SCHEMES = available_schemes()


def stored_scheme(name):
    """A scheme over a fresh database with the bib document stored."""
    db = Database()
    doc = parse_document(BIB_DTD_XML)
    scheme = make_scheme(name, db, dtd=doc.dtd)
    doc_id = scheme.store(doc, "bib").doc_id
    return db, scheme, doc_id


class TestCleanDocumentsVerify:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_bib_document_audits_clean(self, scheme_name):
        db, scheme, doc_id = stored_scheme(scheme_name)
        report = scheme.verify_document(doc_id)
        assert report.ok, report.issues
        assert len(report.checks) >= 5
        db.close()

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_auction_workload_audits_clean(self, scheme_name):
        document = generate_auction(0.05, seed=7)
        db = Database()
        scheme = make_scheme(scheme_name, db, dtd=auction_dtd())
        doc_id = scheme.store(document, "auction").doc_id
        report = scheme.verify_document(doc_id)
        assert report.ok, report.issues
        db.close()

    def test_facade_verify_and_verify_all(self):
        with XmlRelStore.open(scheme="interval") as store:
            a = store.store_text("<a><b>x</b></a>")
            b = store.store_text("<c><d y='1'/></c>")
            assert store.verify(a).ok
            reports = store.verify_all()
            assert [r.doc_id for r in reports] == [a, b]
            assert all(r.ok for r in reports)

    def test_report_summary_and_raise(self):
        with open_store(scheme="edge") as store:
            doc_id = store.store_text("<a><b>x</b></a>")
            report = store.verify(doc_id)
            assert "OK" in report.summary()
            report.raise_if_failed()  # no-op when clean
            report.add("demo", "broken on purpose")
            assert not report.ok
            with pytest.raises(StorageError, match="demo"):
                report.raise_if_failed()


class TestCorruptionDetected:
    """One surgical corruption per scheme; verify must flag it."""

    def check_detects(self, scheme_name, corrupt_sql, params, check_ids):
        db, scheme, doc_id = stored_scheme(scheme_name)
        assert scheme.verify_document(doc_id).ok
        db.execute(corrupt_sql, params)
        report = scheme.verify_document(doc_id)
        assert not report.ok, f"{scheme_name} audit missed the corruption"
        assert any(report.failed(c) for c in check_ids), (
            f"expected one of {check_ids} to fail, got "
            f"{[i.check for i in report.issues]}"
        )
        db.close()

    def test_edge_cycle_detected(self):
        # A self-loop disconnects the row from the root forest.
        self.check_detects(
            "edge",
            "UPDATE edge SET source = target WHERE target = "
            "(SELECT MAX(target) FROM edge)",
            (),
            ["edge-connected", "parents-resolve", "reconstruct", "fetch",
             "catalog-count"],
        )

    def test_binary_label_mismatch_detected(self):
        db, scheme, doc_id = stored_scheme("binary")
        table = scheme.partition_for("title")
        db.execute(f"UPDATE {table} SET label = 'not-title'")
        report = scheme.verify_document(doc_id)
        assert report.failed("binary-catalog")
        db.close()

    def test_universal_dangling_path_detected(self):
        self.check_detects(
            "universal",
            "UPDATE universal SET path_id = 4242 WHERE rowid = "
            "(SELECT MAX(rowid) FROM universal)",
            (),
            ["universal-paths", "fetch"],
        )

    def test_interval_containment_violation_detected(self):
        # Inflate a mid-document element's region so it escapes its
        # parent's interval.
        self.check_detects(
            "interval",
            "UPDATE accel SET size = size + 10000 "
            "WHERE pre = 2",
            (),
            ["interval-containment", "interval-nesting"],
        )

    def test_interval_level_corruption_detected(self):
        self.check_detects(
            "interval",
            "UPDATE accel SET level = 9 WHERE pre = 2",
            (),
            ["interval-levels"],
        )

    def test_dewey_prefix_break_detected(self):
        self.check_detects(
            "dewey",
            "UPDATE dewey SET parent_label = '0099.0099' WHERE pre = "
            "(SELECT MAX(pre) FROM dewey WHERE parent_label IS NOT NULL)",
            (),
            ["dewey-prefix-closed"],
        )

    def test_dewey_depth_corruption_detected(self):
        self.check_detects(
            "dewey",
            "UPDATE dewey SET depth = depth + 3 WHERE pre = 1",
            (),
            ["dewey-depth"],
        )

    def test_xrel_dangling_path_detected(self):
        self.check_detects(
            "xrel",
            "DELETE FROM xrel_paths WHERE path_id = "
            "(SELECT MAX(path_id) FROM xrel_paths)",
            (),
            ["xrel-paths"],
        )

    def test_xrel_inverted_region_detected(self):
        self.check_detects(
            "xrel",
            'UPDATE xrel_element SET "end" = start - 5 WHERE start = '
            "(SELECT MAX(start) FROM xrel_element)",
            (),
            ["xrel-regions"],
        )

    def test_inlining_orphan_parent_detected(self):
        db, scheme, doc_id = stored_scheme("inlining")
        table = scheme.mapping.relations["book"].table.name
        db.execute(f'UPDATE "{table}" SET parent_pre = 4242')
        report = scheme.verify_document(doc_id)
        assert not report.ok
        assert report.failed("inline-parents") or report.failed(
            "parents-resolve"
        )
        db.close()

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_catalog_count_corruption_detected(self, scheme_name):
        self.check_detects(
            scheme_name,
            # Shrink (not grow) the count: inlining's audit tolerates a
            # catalog count above the stored rows (dropped whitespace)
            # but never below.
            "UPDATE xmlrel_documents SET node_count = node_count - 40",
            (),
            ["catalog-count"],
        )
