"""Tests for the FLWOR-lite front end."""

import pytest

from repro.core.store import XmlRelStore
from repro.errors import XPathSyntaxError
from repro.query.flwor import compile_flwor, run_flwor

from tests.conftest import BIB_XML


class TestCompilation:
    def test_basic_for_where_return(self):
        compiled = compile_flwor(
            "for $b in /bib/book "
            "where $b/publisher = 'Springer' and $b/@year > 2000 "
            "return $b/title"
        )
        assert compiled.xpath == (
            "/bib/book[publisher = 'Springer'][@year > 2000]/title"
        )

    def test_no_where(self):
        compiled = compile_flwor("for $b in /bib/book return $b/title")
        assert compiled.xpath == "/bib/book/title"

    def test_return_variable_itself(self):
        compiled = compile_flwor(
            "for $b in /bib/book where $b/price > 50 return $b"
        )
        assert compiled.xpath == "/bib/book[price > 50]"

    def test_nested_bindings(self):
        compiled = compile_flwor(
            "for $b in /bib/book, $a in $b/author "
            "where $b/@year = '2000' and $a/last = 'Suciu' "
            "return $a/first"
        )
        assert compiled.xpath == (
            "/bib/book[@year = '2000']/author[last = 'Suciu']/first"
        )

    def test_descendant_binding(self):
        compiled = compile_flwor("for $t in //title return $t/text()")
        assert compiled.xpath == "//title/text()"

    def test_bare_variable_condition(self):
        compiled = compile_flwor(
            "for $t in /bib/book/title "
            "where contains($t, 'Web') return $t"
        )
        assert compiled.xpath == "/bib/book/title[contains(., 'Web')]"

    def test_conditions_keep_binding_order(self):
        compiled = compile_flwor(
            "for $b in /bib/book, $a in $b/author "
            "where $a/last = 'X' and $b/price > 1 "
            "return $a"
        )
        assert compiled.xpath == "/bib/book[price > 1]/author[last = 'X']"


class TestValidation:
    def test_must_start_with_for(self):
        with pytest.raises(XPathSyntaxError, match="start with 'for'"):
            compile_flwor("return /a")

    def test_return_required(self):
        with pytest.raises(XPathSyntaxError, match="needs a 'return'"):
            compile_flwor("for $x in /a where $x/b = 1")

    def test_first_binding_absolute(self):
        with pytest.raises(XPathSyntaxError, match="absolute"):
            compile_flwor("for $x in $y/a return $x")

    def test_later_binding_chains(self):
        with pytest.raises(XPathSyntaxError, match=r"start at \$x/"):
            compile_flwor(
                "for $x in /a, $y in /b return $y"
            )

    def test_duplicate_variable(self):
        with pytest.raises(XPathSyntaxError, match="duplicate variable"):
            compile_flwor("for $x in /a, $x in $x/b return $x")

    def test_unbound_variable_in_where(self):
        with pytest.raises(XPathSyntaxError, match="unbound"):
            compile_flwor("for $x in /a where $z/b = 1 return $x")

    def test_two_variable_condition_rejected(self):
        with pytest.raises(XPathSyntaxError, match="two variables"):
            compile_flwor(
                "for $x in /a, $y in $x/b "
                "where $x/c = $y/d return $y"
            )

    def test_return_must_use_last_variable(self):
        with pytest.raises(XPathSyntaxError, match="last bound"):
            compile_flwor("for $x in /a, $y in $x/b return $x")

    def test_malformed_binding(self):
        with pytest.raises(XPathSyntaxError, match="malformed"):
            compile_flwor("for $x over /a return $x")


class TestExecution:
    @pytest.fixture(scope="class")
    def store(self):
        with XmlRelStore.open(scheme="interval") as opened:
            doc_id = opened.store_text(BIB_XML, "bib")
            yield opened, doc_id

    def test_run_against_store(self, store):
        opened, doc_id = store
        nodes = run_flwor(
            opened, doc_id,
            "for $b in /bib/book "
            "where $b/price > 50 "
            "return $b/title",
        )
        assert [n.string_value for n in nodes] == ["TCP/IP Illustrated"]

    def test_run_with_nested_bindings(self, store):
        opened, doc_id = store
        nodes = run_flwor(
            opened, doc_id,
            "for $b in /bib/book, $a in $b/author "
            "where $b/@year = '2000' "
            "return $a/last",
        )
        assert [n.string_value for n in nodes] == [
            "Abiteboul", "Buneman", "Suciu",
        ]

    def test_run_against_scheme(self, store):
        opened, doc_id = store
        nodes = run_flwor(
            opened.scheme, doc_id,
            "for $t in //title where contains($t, 'XML') return $t",
        )
        assert [n.string_value for n in nodes] == ["Storage of XML"]


class TestFlworWithAggregates:
    def test_count_condition_compiles_and_runs(self):
        from repro.core.store import XmlRelStore
        from tests.conftest import BIB_XML

        flwor = (
            "for $b in /bib/book "
            "where count($b/author) > 1 "
            "return $b/title"
        )
        compiled = compile_flwor(flwor)
        assert compiled.xpath == "/bib/book[count(author) > 1]/title"
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(BIB_XML)
            nodes = run_flwor(store, doc_id, flwor)
            assert [n.string_value for n in nodes] == ["Data on the Web"]

    def test_last_condition(self):
        from repro.core.store import XmlRelStore
        from tests.conftest import BIB_XML

        flwor = "for $b in /bib/book where last() return $b/@id"
        # 'last()' references no variable: rejected with a clear error.
        with pytest.raises(XPathSyntaxError, match="no variable"):
            compile_flwor(flwor)
