"""Shared fixtures and helpers for the test suite.

With ``XMLREL_LOCK_HARNESS=1`` in the environment (the CI
``concurrency-analysis`` job), every :class:`repro.serve.ShardedStore`
the suite opens is instrumented with the runtime lock-order harness
(:mod:`repro.analysis.lockharness`); any recorded lock-order violation
fails the session at teardown, and the acquisition graph is written to
``$XMLREL_LOCK_HARNESS_REPORT`` (default ``lock-harness-report.json``).
"""

import os

import pytest

from repro.relational.database import Database
from repro.core.registry import available_schemes, create_scheme
from repro.xml import parse_document

# Schemes whose translators support the full core query set on
# schema-less documents (inlining requires a DTD; handled separately).
SCHEMALESS_SCHEMES = [
    name for name in available_schemes() if name != "inlining"
]

BIB_XML = """\
<bib>
  <book year="1994" id="b1">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000" id="b2">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann</publisher>
    <price>39.95</price>
  </book>
  <article year="2001" id="a1">
    <title>Storage of XML</title>
    <author><last>Florescu</last></author>
  </article>
</bib>
"""

BIB_DTD_XML = """\
<!DOCTYPE bib [
<!ELEMENT bib (book*, article*)>
<!ELEMENT book (title, author+, publisher?, price?)>
<!ATTLIST book year CDATA #REQUIRED id ID #IMPLIED>
<!ELEMENT article (title, author+)>
<!ATTLIST article year CDATA #REQUIRED id ID #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (last, first?)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT first (#PCDATA)>
]>
""" + BIB_XML


@pytest.fixture()
def db():
    with Database() as database:
        yield database


@pytest.fixture()
def bib_doc():
    return parse_document(BIB_XML)


def make_scheme(name, db, dtd=None, **kwargs):
    """Instantiate a scheme, supplying the DTD where required."""
    if name == "inlining":
        kwargs.setdefault("dtd", dtd)
    return create_scheme(name, db, **kwargs)


# -- opt-in runtime lock-order harness ----------------------------------------

_LOCK_WATCHER = None
_ORIGINAL_OPEN = None


def pytest_configure(config):
    if not os.environ.get("XMLREL_LOCK_HARNESS"):
        return
    global _LOCK_WATCHER, _ORIGINAL_OPEN
    from repro.analysis.lockharness import (
        LockWatcher,
        instrument_sharded_store,
    )
    from repro.serve.sharded import ShardedStore

    _LOCK_WATCHER = LockWatcher()
    _ORIGINAL_OPEN = ShardedStore.open.__func__

    def opened_instrumented(cls, *args, **kwargs):
        store = _ORIGINAL_OPEN(cls, *args, **kwargs)
        instrument_sharded_store(store, _LOCK_WATCHER)
        return store

    ShardedStore.open = classmethod(opened_instrumented)


def pytest_unconfigure(config):
    global _LOCK_WATCHER, _ORIGINAL_OPEN
    if _LOCK_WATCHER is None:
        return
    from repro.serve.sharded import ShardedStore

    ShardedStore.open = classmethod(_ORIGINAL_OPEN)
    _LOCK_WATCHER = None
    _ORIGINAL_OPEN = None


@pytest.fixture(autouse=True, scope="session")
def lock_harness_gate():
    """Fails the session at teardown on any recorded violation."""
    yield
    if _LOCK_WATCHER is None:
        return
    report_path = os.environ.get(
        "XMLREL_LOCK_HARNESS_REPORT", "lock-harness-report.json"
    )
    _LOCK_WATCHER.write_report(report_path)
    report = _LOCK_WATCHER.report()
    print(
        f"\nlock harness: {report['acquires']} acquire(s), "
        f"{report['count']} violation(s), report at {report_path}"
    )
    _LOCK_WATCHER.assert_clean()
