"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.relational.database import Database
from repro.core.registry import available_schemes, create_scheme
from repro.xml import parse_document

# Schemes whose translators support the full core query set on
# schema-less documents (inlining requires a DTD; handled separately).
SCHEMALESS_SCHEMES = [
    name for name in available_schemes() if name != "inlining"
]

BIB_XML = """\
<bib>
  <book year="1994" id="b1">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000" id="b2">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann</publisher>
    <price>39.95</price>
  </book>
  <article year="2001" id="a1">
    <title>Storage of XML</title>
    <author><last>Florescu</last></author>
  </article>
</bib>
"""

BIB_DTD_XML = """\
<!DOCTYPE bib [
<!ELEMENT bib (book*, article*)>
<!ELEMENT book (title, author+, publisher?, price?)>
<!ATTLIST book year CDATA #REQUIRED id ID #IMPLIED>
<!ELEMENT article (title, author+)>
<!ATTLIST article year CDATA #REQUIRED id ID #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (last, first?)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT first (#PCDATA)>
]>
""" + BIB_XML


@pytest.fixture()
def db():
    with Database() as database:
        yield database


@pytest.fixture()
def bib_doc():
    return parse_document(BIB_XML)


def make_scheme(name, db, dtd=None, **kwargs):
    """Instantiate a scheme, supplying the DTD where required."""
    if name == "inlining":
        kwargs.setdefault("dtd", dtd)
    return create_scheme(name, db, **kwargs)
