"""Smoke tests: every example script must run to completion.

The examples are part of the public API surface; breaking one is a
regression even when the unit tests stay green.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "auction_analytics.py",
        "document_archive.py",
        "schema_aware.py",
        "selectivity_stats.py",
    }


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-1500:]
    assert completed.stdout.strip(), f"{script} printed nothing"


def test_quickstart_output_content():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert "<title>TCP/IP Illustrated</title>" in completed.stdout
    assert "SELECT" in completed.stdout  # shows the generated SQL
