"""PR 8 — the streaming ingest pipeline.

Three layers of differential evidence, each against the DOM path as
the oracle:

* the pull parser's event stream is *byte-identical* to
  ``stream_events(parse_document(text))`` — including every syntax
  error's message, line and column — at several read-chunk sizes;
* the fused shredder (:func:`shred_into`) emits exactly what the
  reference generator (:func:`shred_stream`) yields;
* storing via the stream produces byte-identical tables, catalog rows
  and reconstruction output across **all seven schemes**.

Plus the bulk machinery around them: file/corpus ingestion, deferred
index rebuilds, and the ``ingest.*`` telemetry.
"""

import pytest

from repro.core.store import XmlRelStore
from repro.errors import StorageError, XmlRelError, XmlSyntaxError
from repro.serve import ShardedStore
from repro.storage.numbering import shred_into, shred_stream
from repro.workloads import (
    auction_dtd,
    dblp_dtd,
    generate_auction,
    generate_dblp,
)
from repro.xml import parse_document, serialize
from repro.xml.events import parse_events, stream_events
from repro.xml.parser import ParseOptions
from repro.xml.stream import iter_events

XML_SMALL = """<?xml version="1.0"?>
<!DOCTYPE bib [<!ENTITY co "Company">]>
<bib xmlns="urn:x">
  <book year="1994" id="b1"><title>TCP/IP &amp; &co;</title>
    <!-- a comment --><?proc data?>
    <price>65.95</price><empty/><ws>   </ws>
  </book>
  <book year="2000"><title><![CDATA[Data >> on ]] the Web]]></title></book>
</bib>"""

WELL_FORMED = [
    "<a/>",
    "<a>x</a>",
    '<a b="1" c="2"><d>t</d><!--c--><?pi d?></a>',
    "<r>" + "".join(f'<i k="{i}">v{i}</i>' for i in range(50)) + "</r>",
    "<a>x<![CDATA[ ]]> ]] ><b/>tail</a>",
    "<a>\n  <b>  </b>\n</a>",
    "<a>&amp;&lt;&#65;</a>",
    '<a x="&quot;q&apos;"/>',
    XML_SMALL,
]

MALFORMED = [
    '<a b="1" b="2"/>',
    "<a><b></c></a>",
    "<a><![CDATA[x]]",
    "<a>x",
    "<a><!--",
    "<a><?pi",
    "<a>&unknown;</a>",
    "<a",
    "<>",
    "<a></a><b/>",
    "<a>]]></a>",
    "<a b=1/>",
]

#: Chunk sizes that land refills mid-tag, mid-text and beyond EOF.
CHUNKS = (7, 64, 8192)

SCHEMES = ("interval", "dewey", "edge", "binary", "universal", "xrel",
           "inlining")


def _chunked_reader(text, chunk):
    """A file-like over *text* that returns *chunk* chars per read."""
    state = {"pos": 0}

    class _Reader:
        def read(self, count):
            start = state["pos"]
            state["pos"] = start + chunk
            return text[start:start + chunk]

    return _Reader()


# -- event-stream parity -----------------------------------------------------


@pytest.mark.parametrize("keep_ws", [False, True])
def test_events_match_dom_walk(keep_ws):
    options = ParseOptions(keep_whitespace=keep_ws)
    for text in WELL_FORMED:
        expected = list(
            stream_events(parse_document(text, options=options))
        )
        for chunk in CHUNKS:
            streamed = list(
                iter_events(_chunked_reader(text, chunk), options)
            )
            assert streamed == expected, (text, chunk)


def test_syntax_errors_match_dom_parser():
    """Same message, same line, same column — at every chunk size."""
    for text in MALFORMED:
        with pytest.raises(XmlSyntaxError) as dom_error:
            parse_document(text)
        for chunk in CHUNKS:
            with pytest.raises(XmlSyntaxError) as stream_error:
                list(iter_events(_chunked_reader(text, chunk)))
            assert str(stream_error.value) == str(dom_error.value), (
                text, chunk
            )


def test_text_source_and_path_source(tmp_path):
    text = WELL_FORMED[2]
    expected = list(stream_events(parse_document(text)))
    assert list(parse_events(text)) == expected
    path = tmp_path / "doc.xml"
    path.write_text(text, encoding="utf-8")
    assert list(parse_events(path)) == expected


# -- shredder parity ---------------------------------------------------------


def test_shred_into_matches_shred_stream():
    text = serialize(generate_auction(0.02, seed=9))
    reference = list(shred_stream(parse_events(text)))
    collected = []
    count, root = shred_into(
        parse_events(text),
        lambda record, content: collected.append(
            ("node", record, content)
        ),
        lambda pre, name, parent: collected.append(
            ("enter", pre, name, parent)
        ),
    )
    assert collected == reference
    assert count == sum(1 for item in reference if item[0] == "node")
    assert root == "site"


def test_shred_into_rejects_unbalanced_stream():
    events = list(parse_events("<a><b/></a>"))[:-2]  # drop END a + doc
    with pytest.raises(StorageError):
        shred_into(events, lambda record, content: None)


# -- whole-store differential: stream vs DOM across all schemes --------------


def _dump_tables(store):
    def key(row):
        return tuple((value is None, value) for value in row)

    return {
        table: sorted(
            store.db.query(f"SELECT * FROM {table}"), key=key
        )
        for table in sorted(store.scheme.table_names())
    }


@pytest.mark.parametrize("scheme", SCHEMES)
def test_stream_store_tables_identical_to_dom(scheme):
    corpora = {
        "auction": (
            serialize(generate_auction(0.01, seed=42)), auction_dtd
        ),
        "dblp": (
            serialize(generate_dblp(record_count=40, seed=7)), dblp_dtd
        ),
    }
    if scheme != "inlining":
        corpora["small"] = (XML_SMALL, None)
    for label, (xml, dtd_factory) in corpora.items():
        kwargs = (
            {"dtd": dtd_factory()} if scheme == "inlining" else {}
        )
        dom_store = XmlRelStore.open(scheme=scheme, **kwargs)
        dom_store.scheme.create_schema()
        stream_store = XmlRelStore.open(scheme=scheme, **kwargs)
        stream_store.scheme.create_schema()
        try:
            dom_result = dom_store.scheme.store(
                parse_document(xml), name="doc"
            )
            stream_result = stream_store.scheme.store_stream(
                parse_events(xml), name="doc"
            )
            assert dom_result.doc_id == stream_result.doc_id
            assert dom_result.node_count == stream_result.node_count
            assert dom_result.row_counts == stream_result.row_counts, (
                scheme, label
            )
            dom_tables = _dump_tables(dom_store)
            stream_tables = _dump_tables(stream_store)
            assert dom_tables.keys() == stream_tables.keys()
            for table in dom_tables:
                assert dom_tables[table] == stream_tables[table], (
                    scheme, label, table
                )
            assert dom_store.db.query(
                "SELECT * FROM xmlrel_documents"
            ) == stream_store.db.query("SELECT * FROM xmlrel_documents")
            assert dom_store.reconstruct_xml(
                dom_result.doc_id
            ) == stream_store.reconstruct_xml(stream_result.doc_id)
        finally:
            dom_store.close()
            stream_store.close()


# -- file and corpus ingestion -----------------------------------------------


def test_store_file_streams_and_round_trips(tmp_path):
    text = serialize(generate_auction(0.01, seed=3))
    path = tmp_path / "auction.xml"
    path.write_text(text, encoding="utf-8")
    with XmlRelStore.open(scheme="interval") as store:
        store.scheme.create_schema()
        doc_id = store.store_file(str(path), name="auction")
        assert store.reconstruct_xml(doc_id) == serialize(
            parse_document(text)
        )


def test_store_file_wraps_io_errors(tmp_path):
    with XmlRelStore.open(scheme="interval") as store:
        store.scheme.create_schema()
        with pytest.raises(XmlRelError, match="cannot read XML file"):
            store.store_file(str(tmp_path / "missing.xml"))
        bad = tmp_path / "bad.xml"
        bad.write_bytes(b"<a>\xff\xfe</a>")
        with pytest.raises(XmlRelError):
            store.store_file(str(bad))


def test_store_corpus_parallel_load(tmp_path):
    texts = [
        serialize(generate_auction(0.01, seed=50 + i)) for i in range(6)
    ]
    names = [f"auction-{i}" for i in range(len(texts))]
    with ShardedStore.open(
        str(tmp_path), scheme="interval", shards=3,
        placement="round_robin",
    ) as store:
        doc_ids = store.store_corpus(texts, names=names)
        assert len(doc_ids) == len(texts)
        # Ids come back in input order and resolve to the right bytes.
        for doc_id, text in zip(doc_ids, texts):
            assert serialize(store.reconstruct(doc_id)) == serialize(
                parse_document(text)
            )
        counts = store.shard_counts()
        assert sum(counts.values()) == len(texts)
        assert all(count > 0 for count in counts.values())
        # The ingest instruments saw the load.
        snapshot = store.metrics.snapshot()
        assert snapshot["counters"]["ingest.documents"] == len(texts)
        assert snapshot["counters"]["ingest.rows"] > 0
        assert snapshot["gauges"]["ingest.queue_depth"]["value"] == 0
        shard_histograms = [
            name
            for name in snapshot["histograms"]
            if name.startswith("ingest.shard")
        ]
        assert len(shard_histograms) == 3


def test_store_corpus_mixed_payloads(tmp_path):
    text = serialize(generate_auction(0.01, seed=11))
    path = tmp_path / "doc.xml"
    path.write_text(text, encoding="utf-8")
    store_dir = tmp_path / "store"
    with ShardedStore.open(
        str(store_dir), scheme="interval", shards=2,
        placement="round_robin",
    ) as store:
        doc_ids = store.store_corpus(
            [text, path, parse_document(text)],
            names=["as-text", "as-path", "as-document"],
        )
        reconstructed = {
            serialize(store.reconstruct(doc_id)) for doc_id in doc_ids
        }
        assert reconstructed == {serialize(parse_document(text))}


def test_store_corpus_name_count_mismatch(tmp_path):
    with ShardedStore.open(
        str(tmp_path), scheme="interval", shards=2,
    ) as store:
        with pytest.raises(StorageError, match="name"):
            store.store_corpus(["<a/>", "<b/>"], names=["only-one"])


def test_store_corpus_atomicity_on_bad_document(tmp_path):
    """One malformed payload rolls back the whole corpus: no shard-map
    entries, no catalog rows, nothing partially registered."""
    good = serialize(generate_auction(0.01, seed=21))
    with ShardedStore.open(
        str(tmp_path), scheme="interval", shards=2,
        placement="round_robin",
    ) as store:
        with pytest.raises(XmlSyntaxError):
            store.store_corpus(
                [good, good, "<broken><nope></broken>"],
                names=["a", "b", "c"],
            )
        assert store.documents() == []
        assert sum(store.shard_counts().values()) == 0
        # The store remains fully usable afterwards.
        [doc_id] = store.store_corpus([good], names=["after"])
        assert serialize(store.reconstruct(doc_id)) == serialize(
            parse_document(good)
        )


def test_store_corpus_empty(tmp_path):
    with ShardedStore.open(
        str(tmp_path), scheme="interval", shards=2,
    ) as store:
        assert store.store_corpus([]) == []


# -- deferred index rebuilds --------------------------------------------------


def _index_names(db):
    return {
        row[0]
        for row in db.query(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name NOT LIKE 'sqlite_%'"
        )
    }


def test_bulk_session_defers_and_rebuilds_indexes():
    text = serialize(generate_auction(0.01, seed=5))
    with XmlRelStore.open(scheme="interval") as store:
        store.scheme.create_schema()
        before = _index_names(store.db)
        assert before  # the interval scheme has secondary indexes
        with store.bulk_session() as session:
            session.store_stream(parse_events(text), "doc")
            # Inside the session the secondary indexes are dropped so
            # inserts pay no incremental maintenance.
            assert not _index_names(store.db) & before
        # Rebuilt (inside the commit) on the way out.
        assert _index_names(store.db) >= before
        [doc] = store.documents()
        assert store.reconstruct_xml(doc.doc_id) == serialize(
            parse_document(text)
        )


def test_bulk_session_rollback_restores_indexes():
    with XmlRelStore.open(scheme="interval") as store:
        store.scheme.create_schema()
        before = _index_names(store.db)
        with pytest.raises(XmlSyntaxError):
            with store.bulk_session() as session:
                session.store_stream(parse_events("<a>ok</a>"), "ok")
                session.store_stream(
                    parse_events("<broken>"), "broken"
                )
        # The rolled-back transaction takes the DROP INDEX statements
        # with it: the schema is exactly as before the session.
        assert _index_names(store.db) >= before
        assert store.documents() == []
