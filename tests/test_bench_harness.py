"""Tests for the benchmark harness (result records and table rendering)."""

import os

from repro.bench import ExperimentResult, format_table, time_call, write_report
from repro.bench.harness import Row, format_value


class TestRows:
    def test_add_row_and_set(self):
        result = ExperimentResult("EX", "t", "w", "e")
        row = result.add_row("edge", ms=1.5)
        row.set("rows", 10)
        assert result.rows[0].values == {"ms": 1.5, "rows": 10}

    def test_all_columns_order(self):
        result = ExperimentResult("EX", "t", "w", "e")
        result.add_row("a", first=1)
        result.add_row("b").set("second", 2).set("first", 3)
        assert result.all_columns() == ["first", "second"]

    def test_column_values(self):
        result = ExperimentResult("EX", "t", "w", "e")
        result.add_row("a", x=1)
        result.add_row("b")
        assert result.column_values("x") == [1, None]


class TestFormatting:
    def test_format_value_variants(self):
        assert format_value(0.0) == "0"
        assert format_value(1234.5) == "1,234"
        assert format_value(3.25) == "3.25"
        assert format_value(0.0123) == "0.0123"
        assert format_value(42) == "42"
        assert format_value(1_000_000) == "1,000,000"
        assert format_value(None) == "—"
        assert format_value("text") == "text"

    def test_format_table_shape(self):
        result = ExperimentResult(
            "E99", "A title", "some workload", "some expectation"
        )
        result.add_row("edge", ms=1.5, rows=100)
        result.add_row("dewey", ms=2.25, rows=200)
        rendered = format_table(result)
        assert "# E99: A title" in rendered
        assert "*Workload:* some workload" in rendered
        lines = [l for l in rendered.splitlines() if l.startswith("|")]
        assert len(lines) == 4  # header + separator + 2 rows
        assert "edge" in lines[2] and "1.50" in lines[2]

    def test_missing_cells_render_dash(self):
        result = ExperimentResult("E98", "t", "w", "e")
        result.add_row("a", x=1)
        result.add_row("b", y=2)
        rendered = format_table(result)
        assert "—" in rendered


class TestWriteReport:
    def test_writes_file(self, tmp_path, capsys):
        result = ExperimentResult("E97", "t", "w", "e")
        result.add_row("only", ms=1.0)
        path = write_report(result, directory=str(tmp_path))
        assert os.path.exists(path)
        assert path.endswith("e97.md")
        with open(path, encoding="utf-8") as handle:
            assert "# E97" in handle.read()
        # Echoed to stdout too.
        assert "# E97" in capsys.readouterr().out


class TestTimeCall:
    def test_returns_best_of_n(self):
        calls = []

        def work():
            calls.append(1)

        seconds = time_call(work, repetitions=4)
        assert len(calls) == 4
        assert seconds >= 0
