"""Unit tests for the DTD parser and content models."""

import pytest

from repro.errors import DtdSyntaxError, XmlSyntaxError
from repro.xml.contentmodel import (
    ChoiceParticle,
    ContentModel,
    NameParticle,
    OPTIONAL,
    PLUS,
    STAR,
    SequenceParticle,
    simplify,
)
from repro.xml.dtd import (
    ATTR_CDATA,
    ATTR_ENUMERATION,
    ATTR_ID,
    ATTR_IDREF,
    DEFAULT_FIXED,
    DEFAULT_IMPLIED,
    DEFAULT_REQUIRED,
    DEFAULT_VALUE,
    parse_dtd,
)

BOOK_DTD = """
<!ELEMENT book (title, author)>
<!ELEMENT article (title, author*)>
<!ATTLIST book price CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (firstname, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ATTLIST author age CDATA #IMPLIED>
"""


class TestElementDeclarations:
    def test_names_in_declaration_order(self):
        dtd = parse_dtd(BOOK_DTD)
        assert dtd.element_names() == [
            "book", "article", "title", "author", "firstname", "lastname",
        ]

    def test_first_declared_is_root_default(self):
        dtd = parse_dtd(BOOK_DTD)
        assert dtd.root_name == "book"

    def test_explicit_root_name(self):
        dtd = parse_dtd(BOOK_DTD, root_name="article")
        assert dtd.root_name == "article"

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>")
        assert dtd.elements["a"].model.is_empty
        assert dtd.elements["b"].model.is_any

    def test_pcdata_only(self):
        dtd = parse_dtd("<!ELEMENT t (#PCDATA)>")
        assert dtd.elements["t"].model.is_pcdata_only

    def test_mixed_with_names(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em | strong)*>")
        model = dtd.elements["p"].model
        assert model.is_mixed
        assert model.mixed_names == ("em", "strong")

    def test_sequence_and_occurrence(self):
        dtd = parse_dtd("<!ELEMENT r (a, b?, c*, d+)>")
        particle = dtd.elements["r"].model.particle
        assert isinstance(particle, SequenceParticle)
        occurrences = [p.occurrence for p in particle.children]
        assert occurrences == ["", OPTIONAL, STAR, PLUS]

    def test_choice_group(self):
        dtd = parse_dtd("<!ELEMENT r (a | b | c)>")
        particle = dtd.elements["r"].model.particle
        assert isinstance(particle, ChoiceParticle)
        assert dtd.elements["r"].model.matches(["a"])
        assert dtd.elements["r"].model.matches(["c"])
        assert not dtd.elements["r"].model.matches(["a", "b"])

    def test_nested_groups(self):
        dtd = parse_dtd("<!ELEMENT r ((a, b) | c)+>")
        model = dtd.elements["r"].model
        assert model.matches(["a", "b"])
        assert model.matches(["c", "a", "b", "c"])
        assert not model.matches([])
        assert not model.matches(["a"])

    def test_mixing_separators_rejected(self):
        with pytest.raises(XmlSyntaxError, match="cannot mix"):
            parse_dtd("<!ELEMENT r (a, b | c)>")

    def test_duplicate_element_rejected(self):
        with pytest.raises(DtdSyntaxError, match="duplicate"):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a ANY>")

    def test_undeclared_references(self):
        dtd = parse_dtd("<!ELEMENT a (b, c)><!ELEMENT b EMPTY>")
        assert dtd.undeclared_references() == {"c"}


class TestContentModelMatching:
    def test_empty_model(self):
        model = ContentModel.empty()
        assert model.matches([])
        assert not model.matches(["x"])

    def test_any_model(self):
        model = ContentModel.any()
        assert model.matches(["x", "y", "z"])

    def test_star(self):
        dtd = parse_dtd("<!ELEMENT r (a*)>")
        model = dtd.elements["r"].model
        assert model.matches([])
        assert model.matches(["a"] * 5)
        assert not model.matches(["b"])

    def test_plus(self):
        dtd = parse_dtd("<!ELEMENT r (a+)>")
        model = dtd.elements["r"].model
        assert not model.matches([])
        assert model.matches(["a", "a"])

    def test_optional(self):
        dtd = parse_dtd("<!ELEMENT r (a?)>")
        model = dtd.elements["r"].model
        assert model.matches([])
        assert model.matches(["a"])
        assert not model.matches(["a", "a"])

    def test_sequence_order_enforced(self):
        dtd = parse_dtd("<!ELEMENT r (a, b)>")
        model = dtd.elements["r"].model
        assert model.matches(["a", "b"])
        assert not model.matches(["b", "a"])

    def test_mixed_allows_any_interleaving(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em)*>")
        model = dtd.elements["p"].model
        assert model.matches(["em", "em"])
        assert model.matches([])
        assert not model.matches(["strong"])


class TestSimplification:
    """The inlining normalization rules (Shanmugasundaram et al. 1999)."""

    def simplified(self, decl_body):
        dtd = parse_dtd(f"<!ELEMENT r {decl_body}>")
        return simplify(dtd.elements["r"].model)

    def test_repeated_group_distributes(self):
        # (e1, e2)* -> e1*, e2*
        assert self.simplified("((a, b)*)") == [("a", "*"), ("b", "*")]

    def test_optional_group_distributes(self):
        # (e1, e2)? -> e1?, e2?
        assert self.simplified("((a, b)?)") == [("a", "?"), ("b", "?")]

    def test_choice_becomes_optionals(self):
        # (e1 | e2) -> e1?, e2?
        assert self.simplified("(a | b)") == [("a", "?"), ("b", "?")]

    def test_plus_generalized_to_star(self):
        assert self.simplified("(a+)") == [("a", "*")]

    def test_nested_quantifiers_collapse(self):
        # e1*? -> e1* (via nested groups)
        assert self.simplified("((a*)?)") == [("a", "*")]

    def test_duplicate_names_merge_to_star(self):
        # ..., a, ..., a -> a*, ...
        assert self.simplified("(a, b, a)") == [("a", "*"), ("b", "1")]

    def test_plain_sequence_keeps_quantifiers(self):
        assert self.simplified("(a, b?, c*)") == [
            ("a", "1"), ("b", "?"), ("c", "*"),
        ]

    def test_mixed_model_gives_stars(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em | b)*>")
        assert simplify(dtd.elements["p"].model) == [("em", "*"), ("b", "*")]

    def test_leaf_models_have_no_fields(self):
        assert simplify(ContentModel.empty()) == []
        assert simplify(ContentModel.any()) == []
        assert simplify(ContentModel.mixed()) == []

    def test_simplified_language_is_superset(self):
        """Any sequence the original accepts, the simplified fields must
        accept too (order-insensitively, as the mapping ignores order)."""
        from repro.xml.contentmodel import fields_accept

        dtd = parse_dtd("<!ELEMENT r ((a, b)+ | c?)>")
        model = dtd.elements["r"].model
        fields = simplify(model)
        for seq in (["a", "b"], ["a", "b", "a", "b"], ["c"], []):
            if model.matches(seq):
                assert fields_accept(fields, seq), seq

    def test_fields_accept_rules(self):
        from repro.xml.contentmodel import fields_accept

        fields = [("a", "1"), ("b", "?"), ("c", "*")]
        assert fields_accept(fields, ["a"])
        assert fields_accept(fields, ["a", "b", "c", "c"])
        assert not fields_accept(fields, [])            # 'a' required
        assert not fields_accept(fields, ["a", "b", "b"])  # 'b' at most once
        assert not fields_accept(fields, ["a", "z"])    # unknown name


class TestAttlist:
    def test_attribute_types_and_defaults(self):
        dtd = parse_dtd(
            """
            <!ELEMENT e EMPTY>
            <!ATTLIST e
               id ID #REQUIRED
               ref IDREF #IMPLIED
               kind (small | large) "small"
               label CDATA #FIXED "x">
            """
        )
        attrs = {a.name: a for a in dtd.attributes_of("e")}
        assert attrs["id"].attr_type == ATTR_ID
        assert attrs["id"].default_kind == DEFAULT_REQUIRED
        assert attrs["ref"].attr_type == ATTR_IDREF
        assert attrs["ref"].default_kind == DEFAULT_IMPLIED
        assert attrs["kind"].attr_type == ATTR_ENUMERATION
        assert attrs["kind"].enumeration == ("small", "large")
        assert attrs["kind"].default_kind == DEFAULT_VALUE
        assert attrs["kind"].default_value == "small"
        assert attrs["label"].default_kind == DEFAULT_FIXED
        assert attrs["label"].default_value == "x"

    def test_multiple_attlists_accumulate(self):
        dtd = parse_dtd(
            "<!ELEMENT e EMPTY>"
            '<!ATTLIST e a CDATA #IMPLIED>'
            '<!ATTLIST e b CDATA #IMPLIED>'
        )
        assert [a.name for a in dtd.attributes_of("e")] == ["a", "b"]

    def test_id_attribute_lookup(self):
        dtd = parse_dtd(
            "<!ELEMENT e EMPTY><!ATTLIST e k ID #REQUIRED v CDATA #IMPLIED>"
        )
        assert dtd.id_attribute_of("e").name == "k"
        assert dtd.id_attribute_of("missing") is None

    def test_attributes_of_unknown_element_empty(self):
        assert parse_dtd(BOOK_DTD).attributes_of("nope") == []


class TestEntitiesAndNotations:
    def test_general_entity(self):
        dtd = parse_dtd('<!ENTITY greeting "hello">')
        assert dtd.general_entities["greeting"].value == "hello"

    def test_parameter_entity_expansion(self):
        dtd = parse_dtd(
            '<!ENTITY % fields "(a, b)">'
            "<!ELEMENT r %fields;>"
            "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
        )
        assert dtd.elements["r"].model.matches(["a", "b"])

    def test_external_entity_recorded_not_fetched(self):
        dtd = parse_dtd('<!ENTITY chap SYSTEM "chap.xml">')
        decl = dtd.general_entities["chap"]
        assert not decl.is_internal
        assert decl.system_id == "chap.xml"

    def test_unparsed_entity_with_notation(self):
        dtd = parse_dtd(
            '<!NOTATION gif SYSTEM "viewer">'
            '<!ENTITY pic SYSTEM "p.gif" NDATA gif>'
        )
        assert dtd.general_entities["pic"].notation == "gif"

    def test_first_entity_declaration_wins(self):
        dtd = parse_dtd('<!ENTITY e "one"><!ENTITY e "two">')
        assert dtd.general_entities["e"].value == "one"

    def test_comments_and_pis_skipped(self):
        dtd = parse_dtd("<!-- note --><?check x?><!ELEMENT a EMPTY>")
        assert dtd.element_names() == ["a"]


class TestRecursiveDtd:
    """The recursive book/author DTD from the tutorial (slide 141)."""

    DTD = """
    <!ELEMENT book (author)>
    <!ATTLIST book title CDATA #REQUIRED>
    <!ELEMENT author (book*)>
    <!ATTLIST author name CDATA #REQUIRED>
    """

    def test_parses_and_is_self_referential(self):
        dtd = parse_dtd(self.DTD)
        assert dtd.elements["book"].model.element_names() == {"author"}
        assert dtd.elements["author"].model.element_names() == {"book"}
        assert dtd.undeclared_references() == set()
