"""The static-analysis layer: SQL plan linter, XPath analyzer, repo lint.

Four families of tests pin the layer down:

* the *negative space* — every translated plan of the benchmark workload
  lints clean on every scheme (the CI sweep's contract, in miniature);
* the *positive space* — hand-built defective statements and repo
  fixtures trip each diagnostic code exactly (P001–P006, X001/X002,
  L001–L005; the concurrency rules C001–C005 live in
  ``tests/test_concurrency_analysis.py``);
* the *semantics* — an unsatisfiable query executes zero SQL statements,
  and a ``//``-expanded query returns byte-identical results to the
  unexpanded translation on real workload documents;
* the *gate* — xmlrel-lint runs clean over ``src/repro`` itself (which
  pins the XRel ``create_function`` reach-around fix, the one real
  finding the gate surfaced).
"""

import json
from pathlib import Path

import pytest

from repro import PlanLintError, XmlRelStore
from repro.analysis import (
    SEVERITY_ADVICE,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    XPathAnalyzer,
    format_diagnostics,
    has_errors,
    lint_statement,
)
from repro.analysis.diagnostics import (
    collect_pragmas,
    is_suppressed,
    sorted_by_severity,
)
from repro.analysis.lint import lint_paths, main as lint_main
from repro.analysis.sweep import main as sweep_main, run_sweep
from repro.errors import UnsupportedQueryError, XmlRelError
from repro.obs.trace import Tracer
from repro.relational.sql import (
    Col,
    Comparison,
    DocParam,
    Param,
    Select,
    Union,
    WithQuery,
)
from repro.workloads import (
    AUCTION_QUERIES,
    DBLP_QUERIES,
    auction_dtd,
    dblp_dtd,
    generate_auction,
    generate_dblp,
)
from repro.xml.dtd import parse_dtd
from tests.conftest import SCHEMALESS_SCHEMES

ALL_SCHEMES = SCHEMALESS_SCHEMES + ["inlining"]

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def auction_doc():
    return generate_auction(0.02, seed=42)


@pytest.fixture(scope="module")
def dblp_doc():
    return generate_dblp(40, seed=7)


def open_scheme_store(name, workload="auction", tracer=None, lint="default"):
    kwargs = {}
    if name == "inlining":
        kwargs["dtd"] = (
            auction_dtd() if workload == "auction" else dblp_dtd()
        )
    return XmlRelStore.open(
        scheme=name, tracer=tracer, lint=lint, **kwargs
    )


# ---------------------------------------------------------------------------
# The negative space: every workload plan lints clean on every scheme.
# ---------------------------------------------------------------------------


class TestWorkloadPlansClean:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_auction_suite_zero_errors(self, scheme_name, auction_doc):
        with open_scheme_store(scheme_name, "auction") as store:
            doc_id = store.store(auction_doc, "auction")
            translator = store.scheme.translator()
            checked = 0
            for spec in AUCTION_QUERIES:
                try:
                    plans, _ = translator.plans_for(doc_id, spec.xpath)
                except UnsupportedQueryError:
                    continue
                checked += 1
                errors = [
                    d
                    for plan in plans
                    for d in plan.diagnostics
                    if d.is_error
                ]
                assert not errors, (
                    f"{scheme_name}/{spec.key}: "
                    + "; ".join(d.format() for d in errors)
                )
            assert checked > 0

    @pytest.mark.parametrize("scheme_name", ["edge", "interval", "xrel"])
    def test_dblp_suite_zero_errors(self, scheme_name, dblp_doc):
        with open_scheme_store(scheme_name, "dblp") as store:
            doc_id = store.store(dblp_doc, "dblp")
            translator = store.scheme.translator()
            for spec in DBLP_QUERIES:
                try:
                    plans, _ = translator.plans_for(doc_id, spec.xpath)
                except UnsupportedQueryError:
                    continue
                assert not any(
                    d.is_error for plan in plans for d in plan.diagnostics
                ), f"{scheme_name}/{spec.key}"

    def test_sweep_runs_clean(self):
        report = run_sweep(["edge", "interval"])
        assert report["errors"] == 0
        assert report["checked"] > 0


# ---------------------------------------------------------------------------
# The positive space: each SQL diagnostic code has a firing fixture.
# ---------------------------------------------------------------------------


@pytest.fixture()
def interval_catalog():
    with XmlRelStore.open(scheme="interval") as store:
        store.store_text("<a><b>x</b></a>")
        yield store.db.schema_catalog()


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestSqlLintFixtures:
    def test_p001_unknown_table(self, interval_catalog):
        statement = (
            Select().select(Col("pre", "t")).from_table("missing", "t")
        )
        found = lint_statement(statement, interval_catalog)
        assert "P001" in codes(found)
        assert has_errors(found)

    def test_p002_unknown_column(self, interval_catalog):
        statement = (
            Select()
            .select(Col("nonexistent", "t"))
            .from_table("accel", "t")
            .where(Comparison("=", Col("doc_id", "t"), DocParam()))
        )
        assert "P002" in codes(lint_statement(statement, interval_catalog))

    def test_p002_unknown_alias(self, interval_catalog):
        statement = (
            Select()
            .select(Col("pre", "z"))
            .from_table("accel", "t")
            .where(Comparison("=", Col("doc_id", "t"), DocParam()))
        )
        assert "P002" in codes(lint_statement(statement, interval_catalog))

    def test_p003_cartesian_product(self, interval_catalog):
        statement = (
            Select()
            .select(Col("pre", "a"))
            .from_table("accel", "a")
            .join(
                "accel",
                "b",
                Comparison("=", Col("doc_id", "b"), DocParam()),
            )
            .where(Comparison("=", Col("doc_id", "a"), DocParam()))
        )
        assert "P003" in codes(lint_statement(statement, interval_catalog))

    def test_p004_missing_doc_predicate(self, interval_catalog):
        statement = (
            Select()
            .select(Col("pre", "t"))
            .from_table("accel", "t")
            .where(Comparison("=", Col("name", "t"), Param("b")))
        )
        assert "P004" in codes(lint_statement(statement, interval_catalog))

    def test_p004_transitive_doc_predicate_is_clean(self, interval_catalog):
        # v.doc_id = n.doc_id constrains both aliases.
        statement = (
            Select()
            .select(Col("pre", "n"))
            .from_table("accel", "n")
            .join(
                "accel",
                "v",
                Comparison("=", Col("doc_id", "v"), Col("doc_id", "n")),
            )
            .where(Comparison("=", Col("doc_id", "n"), DocParam()))
            .where(Comparison("=", Col("pre", "v"), Col("parent_pre", "n")))
        )
        assert "P004" not in codes(
            lint_statement(statement, interval_catalog)
        )

    def test_p005_recursive_cte_without_base_case(self, interval_catalog):
        looping = (
            Select()
            .select(Col("pre", "r"))
            .from_table("loop", "r")
        )
        statement = WithQuery(recursive=True).add_cte("loop", looping)
        statement.final = (
            Select().select(Col("pre", "loop")).from_table("loop", "loop")
        )
        found = lint_statement(statement, interval_catalog)
        assert "P005" in codes(found)

    def test_p005_with_base_case_is_clean(self, interval_catalog):
        base = (
            Select()
            .select(Col("pre", "t"))
            .from_table("accel", "t")
            .where(Comparison("=", Col("doc_id", "t"), DocParam()))
        )
        step = (
            Select().select(Col("pre", "walk")).from_table("walk", "walk")
        )
        statement = WithQuery(recursive=True).add_cte(
            "walk", Union((base, step))
        )
        statement.final = (
            Select().select(Col("pre", "walk")).from_table("walk", "walk")
        )
        assert "P005" not in codes(
            lint_statement(statement, interval_catalog)
        )

    def test_p006_uncovered_join_column(self, interval_catalog):
        # 'post' is not a prefix of any accel index.
        statement = (
            Select()
            .select(Col("pre", "a"))
            .from_table("accel", "a")
            .join(
                "accel",
                "b",
                Comparison("=", Col("post", "b"), Col("post", "a")),
            )
            .where(Comparison("=", Col("doc_id", "a"), DocParam()))
            .where(Comparison("=", Col("doc_id", "b"), DocParam()))
        )
        found = lint_statement(statement, interval_catalog)
        p006 = [d for d in found if d.code == "P006"]
        assert p006 and all(d.severity == SEVERITY_ADVICE for d in p006)
        assert not has_errors(found)

    def test_covered_join_is_clean(self, interval_catalog):
        statement = (
            Select()
            .select(Col("pre", "a"))
            .from_table("accel", "a")
            .join(
                "accel",
                "b",
                Comparison("=", Col("parent_pre", "b"), Col("pre", "a")),
            )
            .where(Comparison("=", Col("doc_id", "a"), DocParam()))
            .where(Comparison("=", Col("doc_id", "b"), DocParam()))
        )
        assert not lint_statement(statement, interval_catalog)


# ---------------------------------------------------------------------------
# Strict mode raises; default mode attaches diagnostics to the report.
# ---------------------------------------------------------------------------


class TestLintModes:
    def test_strict_mode_raises_on_dangling_table(self):
        with XmlRelStore.open(scheme="interval", lint="strict") as store:
            doc_id = store.store_text("<a><b>x</b></a>")
            assert store.query_pres(doc_id, "/a/b") == [2]
            # Pull the scheme's table out from under the translator: the
            # next (cold) translation references a table that no longer
            # exists, which strict mode turns into a raise.
            store.db.drop_table("accel")
            store.clear_plan_cache()
            with pytest.raises(PlanLintError) as excinfo:
                store.query_pres(doc_id, "/a/b/c")
            assert any(d.code == "P001" for d in excinfo.value.diagnostics)

    def test_off_mode_skips_linting(self):
        with XmlRelStore.open(scheme="interval", lint="off") as store:
            doc_id = store.store_text("<a><b>x</b></a>")
            report = store.query_report(doc_id, "/a/b")
            assert report.analysis == ()

    def test_invalid_mode_rejected(self):
        with pytest.raises(XmlRelError):
            XmlRelStore.open(scheme="interval", lint="pedantic")

    def test_query_report_carries_analysis_field(self):
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text("<a><b>x</b></a>")
            report = store.query_report(doc_id, "/a/b")
            assert isinstance(report.analysis, tuple)
            assert not has_errors(report.analysis)
            assert "rows:" in report.format()

    def test_plan_cache_size_gauge(self):
        tracer = Tracer(enabled=True)
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text("<a><b>x</b></a>")
            store.query_pres(doc_id, "/a/b")
            store.query_pres(doc_id, "/a")
            gauge = tracer.metrics.gauge("plan_cache.size")
            assert gauge.value == len(store.db.plan_cache) == 2
            store.clear_plan_cache()
            assert len(store.db.plan_cache) == 0


# ---------------------------------------------------------------------------
# XPath satisfiability: provable emptiness, and the zero-SQL short-circuit.
# ---------------------------------------------------------------------------


BOOK_DTD = """\
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ATTLIST book year CDATA #IMPLIED>
"""

BOOK_XML = (
    "<bib><book year='2000'><title>T</title>"
    "<author>A</author></book></bib>"
)


class TestSatisfiability:
    def setup_method(self):
        self.analyzer = XPathAnalyzer(dtd=parse_dtd(BOOK_DTD))

    def test_conforming_paths_make_no_claim(self):
        assert self.analyzer.satisfiable("/bib/book/title") is None
        assert self.analyzer.satisfiable("//author") is None
        assert self.analyzer.satisfiable("/bib/book/@year") is None

    def test_undeclared_child_is_unsatisfiable(self):
        assert self.analyzer.satisfiable("/bib/journal") is False
        assert self.analyzer.satisfiable("/bib/book/title/author") is False
        assert self.analyzer.satisfiable("//publisher") is False

    def test_undeclared_attribute_is_unsatisfiable(self):
        assert self.analyzer.satisfiable("/bib/book/@isbn") is False

    def test_step_after_attribute_is_unsatisfiable(self):
        assert self.analyzer.satisfiable("/bib/book/@year/title") is False

    def test_union_needs_every_arm_empty(self):
        assert (
            self.analyzer.satisfiable("/bib/journal | /bib/book") is None
        )
        assert (
            self.analyzer.satisfiable("/bib/journal | /bib/magazine")
            is False
        )

    def test_x001_diagnostic(self):
        found = self.analyzer.diagnose("/bib/journal")
        assert [d.code for d in found] == ["X001"]
        assert not self.analyzer.diagnose("/bib/book")

    def test_summary_analyzer_prunes_instance_misses(self):
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(BOOK_XML)
            analyzer = store.enable_analysis(doc_id=doc_id)
            # Declared by no DTD here; the summary knows the instance.
            assert analyzer.satisfiable("/bib/journal") is False
            assert analyzer.satisfiable("/bib/book/title") is None

    def test_analyzer_requires_a_source(self):
        with pytest.raises(XmlRelError):
            XPathAnalyzer()

    @pytest.mark.parametrize("scheme_name", ["edge", "interval", "dewey"])
    def test_unsat_query_executes_zero_statements(self, scheme_name):
        tracer = Tracer(enabled=True)
        with open_scheme_store(scheme_name, tracer=tracer) as store:
            doc_id = store.store_text(BOOK_XML)
            store.enable_analysis(dtd=parse_dtd(BOOK_DTD))
            before = len(tracer.spans_named("sql.statement"))
            assert store.query_pres(doc_id, "/bib/journal") == []
            assert len(tracer.spans_named("sql.statement")) == before
            assert (
                tracer.metrics.counter_value("analysis.unsat_queries") == 1
            )
            spans = tracer.spans_named("query")
            assert spans[-1].attributes.get("unsatisfiable") is True

    def test_satisfiable_query_still_runs(self):
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(BOOK_XML)
            store.enable_analysis(dtd=parse_dtd(BOOK_DTD))
            assert store.query_pres(doc_id, "/bib/book/title") == [4]


# ---------------------------------------------------------------------------
# // expansion: exactness (differential) and refusal on recursion.
# ---------------------------------------------------------------------------


RECURSIVE_DTD = """\
<!ELEMENT doc (section*)>
<!ELEMENT section (title, section*)>
<!ELEMENT title (#PCDATA)>
"""


class TestDescendantExpansion:
    def test_expands_into_concrete_chains(self):
        analyzer = XPathAnalyzer(dtd=parse_dtd(BOOK_DTD), expand=True)
        expanded = analyzer.expand("//author")
        assert expanded is not None and len(expanded) == 1
        assert "#expand" in expanded[0].source
        found = analyzer.expansion_diagnostics("//author", expanded)
        assert [d.code for d in found] == ["X002"]

    def test_refuses_recursive_target(self):
        analyzer = XPathAnalyzer(dtd=parse_dtd(RECURSIVE_DTD), expand=True)
        assert analyzer.expand("//section") is None
        # Nested sections must still all be found (the translator falls
        # back to the ordinary descendant plan).
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(
                "<doc><section><title>a</title>"
                "<section><title>b</title></section>"
                "</section></doc>"
            )
            store.enable_analysis(
                dtd=parse_dtd(RECURSIVE_DTD), expand=True
            )
            assert len(store.query_pres(doc_id, "//section")) == 2
            assert len(store.query_pres(doc_id, "//title")) == 2

    def test_refuses_without_descendant_or_with_wildcards(self):
        analyzer = XPathAnalyzer(dtd=parse_dtd(BOOK_DTD), expand=True)
        assert analyzer.expand("/bib/book/title") is None
        assert analyzer.expand("//*") is None
        assert analyzer.expand("//book | //title") is None

    def test_disabled_without_flag_or_dtd(self):
        assert not XPathAnalyzer(dtd=parse_dtd(BOOK_DTD)).expansion_enabled
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(BOOK_XML)
            analyzer = store.enable_analysis(doc_id=doc_id, expand=True)
            assert not analyzer.expansion_enabled

    @pytest.mark.parametrize("scheme_name", ["edge", "interval", "dewey"])
    def test_auction_differential(self, scheme_name, auction_doc):
        specs = [s for s in AUCTION_QUERIES if "//" in s.xpath]
        assert specs
        self._differential(
            scheme_name, auction_doc, auction_dtd(), specs
        )

    @pytest.mark.parametrize("scheme_name", ["edge", "interval"])
    def test_dblp_differential(self, scheme_name, dblp_doc):
        specs = [s for s in DBLP_QUERIES if "//" in s.xpath]
        assert specs
        self._differential(scheme_name, dblp_doc, dblp_dtd(), specs)

    def _differential(self, scheme_name, document, dtd, specs):
        tracer = Tracer(enabled=True)
        with XmlRelStore.open(scheme=scheme_name) as plain, XmlRelStore.open(
            scheme=scheme_name, tracer=tracer
        ) as analyzed:
            plain_id = plain.store(document, "doc")
            analyzed_id = analyzed.store(document, "doc")
            analyzed.enable_analysis(dtd=dtd, expand=True)
            for spec in specs:
                try:
                    expected = plain.query_pres(plain_id, spec.xpath)
                except UnsupportedQueryError:
                    continue
                assert (
                    analyzed.query_pres(analyzed_id, spec.xpath)
                    == expected
                ), f"{scheme_name}/{spec.key}"


# ---------------------------------------------------------------------------
# xmlrel-lint: repo fixtures per rule, and the gate over src/repro itself.
# ---------------------------------------------------------------------------


class TestRepoLint:
    def lint_fixture(self, tmp_path, files):
        for rel, text in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text, encoding="utf-8")
        return lint_paths([tmp_path], root=tmp_path)

    def test_l001_raw_sql_literal(self, tmp_path):
        found = self.lint_fixture(
            tmp_path,
            {"repro/query/bad.py": 'q = "SELECT pre FROM edge"\n'},
        )
        assert [d.code for d in found] == ["L001"]

    def test_l001_allows_relational_layer(self, tmp_path):
        found = self.lint_fixture(
            tmp_path,
            {
                "repro/relational/ok.py": 'q = "SELECT 1"\n',
                "repro/storage/ok.py": 'q = "DELETE FROM edge"\n',
            },
        )
        assert not found

    def test_l001_skips_docstrings_and_prose(self, tmp_path):
        found = self.lint_fixture(
            tmp_path,
            {
                "repro/query/doc.py": (
                    '"""SELECT statements are generated, not written."""\n'
                    'msg = "select a scheme"\n'
                ),
            },
        )
        assert not found

    def test_l002_conn_reacharound_and_sqlite_import(self, tmp_path):
        found = self.lint_fixture(
            tmp_path,
            {
                "repro/query/bad.py": (
                    "import sqlite3\n"
                    "def f(db):\n"
                    "    return db._conn\n"
                ),
            },
        )
        assert [d.code for d in found] == ["L002", "L002"]

    def test_l003_bare_except(self, tmp_path):
        found = self.lint_fixture(
            tmp_path,
            {
                "repro/query/bad.py": (
                    "try:\n    pass\nexcept:\n    pass\n"
                ),
            },
        )
        assert [d.code for d in found] == ["L003"]

    def test_l004_unregistered_scheme(self, tmp_path):
        files = {
            "repro/storage/extra.py": (
                "from repro.storage.base import MappingScheme\n"
                "class GhostScheme(MappingScheme):\n"
                '    name = "ghost"\n'
            ),
            "repro/core/registry.py": "_SCHEMES = {}\n",
        }
        found = self.lint_fixture(tmp_path, files)
        assert [d.code for d in found] == ["L004"]
        files["repro/core/registry.py"] = (
            "from repro.storage.extra import GhostScheme\n"
            "_SCHEMES = {GhostScheme.name: GhostScheme}\n"
        )
        assert not self.lint_fixture(tmp_path, files)

    def test_l005_raw_lock_outside_registry(self, tmp_path):
        found = self.lint_fixture(
            tmp_path,
            {
                "repro/query/bad.py": (
                    "import threading\nlock = threading.Lock()\n"
                ),
            },
        )
        assert [d.code for d in found] == ["L005"]

    def test_l005_bare_import_form(self, tmp_path):
        found = self.lint_fixture(
            tmp_path,
            {
                "repro/xml/bad.py": (
                    "from threading import RLock\nguard = RLock()\n"
                ),
            },
        )
        assert [d.code for d in found] == ["L005"]

    def test_l005_registered_module_and_pragma_are_exempt(self, tmp_path):
        found = self.lint_fixture(
            tmp_path,
            {
                # Registered in repro.analysis.concurrency.LOCK_SITES.
                "repro/serve/pool.py": (
                    "import threading\nlock = threading.Lock()\n"
                ),
                # Suppressed in place, with justification.
                "repro/query/ok.py": (
                    "import threading\n"
                    "# guards a module-local cache, never nested\n"
                    "lock = threading.Lock()  # lint: allow(L005)\n"
                ),
            },
        )
        assert not found

    def test_src_repro_is_clean(self):
        findings = lint_paths([SRC_ROOT / "repro"], root=SRC_ROOT)
        assert not findings, "\n".join(d.format() for d in findings)

    def test_xrel_uses_wrapped_create_function(self):
        # Pin the reach-around fix the gate surfaced: the XRel
        # translator must register its SQL function through the
        # span-instrumented Database wrapper, not the raw connection.
        source = (
            SRC_ROOT / "repro" / "query" / "translate_xrel.py"
        ).read_text(encoding="utf-8")
        assert "_conn" not in source
        assert "self.db.create_function(" in source
        with XmlRelStore.open(scheme="xrel") as store:
            doc_id = store.store_text(BOOK_XML)
            assert store.query_pres(doc_id, "//author") == [6]


class TestDiagnosticRecord:
    def test_format_and_dict(self):
        d = Diagnostic("P001", SEVERITY_ERROR, "boom", location="FROM x")
        assert d.format() == "FROM x: P001 error: boom"
        assert d.to_dict() == {
            "code": "P001",
            "severity": "error",
            "message": "boom",
            "location": "FROM x",
        }
        assert d.is_error

    def test_format_without_location(self):
        d = Diagnostic("X001", SEVERITY_WARNING, "empty")
        assert d.format() == "X001 warning: empty"
        assert not d.is_error

    def test_sorted_by_severity_and_block_format(self):
        advice = Diagnostic("P006", SEVERITY_ADVICE, "slow", location="z")
        warning = Diagnostic("C003", SEVERITY_WARNING, "race", location="b:9")
        error = Diagnostic("L001", SEVERITY_ERROR, "sql", location="a:3")
        shuffled = [advice, warning, error]
        ordered = sorted_by_severity(shuffled)
        assert [d.code for d in ordered] == ["L001", "C003", "P006"]
        block = format_diagnostics(shuffled)
        assert block.splitlines() == [d.format() for d in ordered]
        assert has_errors(shuffled)
        assert not has_errors([advice, warning])

    def test_collect_pragmas_inline_and_comment_line(self):
        text = (
            "x = 1\n"
            "y = risky()  # lint: allow(C002, L005)\n"
            "# justified above  # lint: allow(C004)\n"
            "z = spawn()\n"
        )
        pragmas = collect_pragmas(text)
        assert pragmas[2] == frozenset({"C002", "L005"})
        # A comment-only pragma line also covers the next line.
        assert pragmas[3] == pragmas[4] == frozenset({"C004"})
        assert is_suppressed(pragmas, 2, "C002")
        assert is_suppressed(pragmas, 2, "L005")
        assert not is_suppressed(pragmas, 2, "C004")
        assert is_suppressed(pragmas, 4, "C004")
        assert not is_suppressed(pragmas, 1, "C002")


# ---------------------------------------------------------------------------
# The --json artifacts of the linter CLIs (the CI report schemas).
# ---------------------------------------------------------------------------


class TestReportSchemas:
    def test_lint_json_artifact(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "query" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "try:\n    pass\nexcept:\n    pass\n", encoding="utf-8"
        )
        report_path = tmp_path / "lint-report.json"
        code = lint_main(["--json", str(report_path), str(tmp_path)])
        assert code == 1
        assert "finding(s)" in capsys.readouterr().out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert set(report) == {"findings", "count"}
        assert report["count"] == len(report["findings"]) == 1
        finding = report["findings"][0]
        assert set(finding) == {"code", "severity", "message", "location"}
        assert finding["code"] == "L003"

    def test_lint_clean_exit(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_sweep_json_artifact(self, tmp_path, capsys):
        report_path = tmp_path / "sweep-report.json"
        code = sweep_main(["edge", "--json", str(report_path)])
        assert code == 0
        assert "plan-lint sweep" in capsys.readouterr().out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert set(report) >= {
            "checked", "skipped", "errors", "diagnostics", "entries",
        }
        assert report["errors"] == 0
        assert report["checked"] > 0
        for entry in report["entries"]:
            assert {"corpus", "scheme", "query"} <= set(entry)
