"""Differential tests for the extended axes (ancestor, siblings,
following/preceding) — the order-encoding schemes' signature capability.

Coverage matrix (the published reality this preserves):

* interval — every axis is a region window: full support;
* dewey    — every axis is a label comparison: full support;
* edge/binary — ancestor needs an *upward* recursive closure, siblings
  an ordinal join; following/preceding are untranslatable without an
  order encoding and are rejected.
"""

import pytest

from repro.errors import UnsupportedQueryError
from repro.relational.database import Database
from repro.workloads.treegen import TreeProfile, generate_tree
from repro.xml import parse_document
from repro.xpath import evaluate_nodes

from tests.conftest import BIB_XML, make_scheme

FULL_SUPPORT = ("interval", "dewey")
ANCESTOR_SUPPORT = ("edge", "binary", "interval", "dewey")

ANCESTOR_QUERIES = [
    "/bib/book/author/ancestor::book",
    "//last/ancestor::*",
    "//last/ancestor::author",
    "//last/ancestor-or-self::last",
    "//first/ancestor::book/title",
    "//author/ancestor::book[@year = '2000']/@id",
    "//last/ancestor::journal",                       # empty
    "/bib/book/@year/ancestor::book",                 # from an attribute
]

SIBLING_QUERIES = [
    "/bib/book[1]/following-sibling::*",
    "/bib/book[1]/following-sibling::article",
    "/bib/article/preceding-sibling::book",
    "/bib/book/following-sibling::book[title]",
    "/bib/book/author[1]/following-sibling::author/last",
    "/bib/book[2]/preceding-sibling::*",
]

ORDER_QUERIES = [
    "/bib/book[1]/following::author",
    "/bib/article/preceding::title",
    "/bib/book[2]/following::*",
    "//first/following::last",
    "//article/preceding::price",
]


@pytest.fixture(scope="module")
def stores():
    doc = parse_document(BIB_XML)
    built = {}
    databases = []
    for name in ANCESTOR_SUPPORT:
        db = Database()
        databases.append(db)
        scheme = make_scheme(name, db)
        built[name] = (scheme, scheme.store(doc, "bib").doc_id)
    yield doc, built
    for db in databases:
        db.close()


def expected(doc, query):
    return sorted(
        n.order_key for n in evaluate_nodes(doc, query) if n.order_key > 0
    )


@pytest.mark.parametrize("query", ANCESTOR_QUERIES + SIBLING_QUERIES)
@pytest.mark.parametrize("scheme_name", ANCESTOR_SUPPORT)
def test_ancestor_and_sibling_axes(stores, scheme_name, query):
    doc, built = stores
    scheme, doc_id = built[scheme_name]
    assert scheme.query_pres(doc_id, query) == expected(doc, query)


@pytest.mark.parametrize("query", ORDER_QUERIES)
def test_following_preceding_axes(stores, query):
    doc, built = stores
    for scheme_name in FULL_SUPPORT:
        scheme, doc_id = built[scheme_name]
        assert scheme.query_pres(doc_id, query) == expected(doc, query), (
            scheme_name
        )
    for scheme_name in ("edge", "binary"):
        scheme, doc_id = built[scheme_name]
        with pytest.raises(UnsupportedQueryError):
            scheme.query_pres(doc_id, query)


def test_sibling_axis_from_attribute_rejected(stores):
    __, built = stores
    for scheme_name in ANCESTOR_SUPPORT:
        scheme, doc_id = built[scheme_name]
        with pytest.raises(UnsupportedQueryError, match="attribute"):
            scheme.query_pres(doc_id, "/bib/book/@year/following-sibling::*")


def test_extended_axes_rejected_by_path_schemes(stores):
    doc, __ = stores
    for scheme_name in ("xrel", "universal"):
        with Database() as db:
            scheme = make_scheme(scheme_name, db)
            doc_id = scheme.store(doc, "bib").doc_id
            with pytest.raises(UnsupportedQueryError):
                scheme.query_pres(doc_id, "//last/ancestor::book")


RANDOM_QUERIES = [
    "//c/ancestor::a",
    "//b/ancestor-or-self::b",
    "//a/following-sibling::b",
    "//b/preceding-sibling::*",
    "//c/following::a",
    "//a/preceding::c",
    "//b/ancestor::*[@k]",
]


@pytest.mark.parametrize("seed", range(4))
def test_extended_axes_on_random_trees(seed):
    profile = TreeProfile(depth=4, max_fanout=3, labels=("a", "b", "c"))
    document = generate_tree(profile, seed=seed)
    for scheme_name in FULL_SUPPORT:
        with Database() as db:
            scheme = make_scheme(scheme_name, db)
            doc_id = scheme.store(document, f"rand{seed}").doc_id
            for query in RANDOM_QUERIES:
                assert scheme.query_pres(doc_id, query) == expected(
                    document, query
                ), (scheme_name, query)
