"""Tests for the path summary and cardinality estimation."""

import pytest

from repro.stats import build_summary, estimate_cardinality
from repro.workloads import generate_auction
from repro.xml import parse_document
from repro.xpath import evaluate_nodes

from tests.conftest import BIB_XML


@pytest.fixture(scope="module")
def bib_summary():
    return build_summary(parse_document(BIB_XML))


@pytest.fixture(scope="module")
def auction():
    doc = generate_auction(0.05, seed=3)
    return doc, build_summary(doc)


class TestSummary:
    def test_path_counts(self, bib_summary):
        assert bib_summary.get(("bib",)).count == 1
        assert bib_summary.get(("bib", "book")).count == 2
        assert bib_summary.get(("bib", "book", "author")).count == 4
        assert bib_summary.get(("bib", "book", "author", "last")).count == 4

    def test_attribute_paths(self, bib_summary):
        assert bib_summary.get(("bib", "book", "@year")).count == 2
        assert bib_summary.get(("bib", "article", "@id")).count == 1

    def test_text_paths(self, bib_summary):
        stats = bib_summary.get(("bib", "book", "title", "#text"))
        assert stats.count == 2

    def test_parent_counts(self, bib_summary):
        author = bib_summary.get(("bib", "book", "author"))
        assert author.parent_count == 2  # 2 books

    def test_value_statistics(self, bib_summary):
        price = bib_summary.get(("bib", "book", "price"))
        assert price.distinct_values == 2
        assert price.numeric_min == 39.95
        assert price.numeric_max == 65.95
        assert price.numeric_fraction == 1.0

    def test_non_numeric_values(self, bib_summary):
        title = bib_summary.get(("bib", "book", "title"))
        assert title.numeric_count == 0
        assert title.distinct_values == 2

    def test_matching_descendant_pattern(self, bib_summary):
        matched = bib_summary.matching([("last", True)])
        assert {m.path for m in matched} == {
            ("bib", "book", "author", "last"),
            ("bib", "article", "author", "last"),
        }

    def test_matching_wildcard(self, bib_summary):
        matched = bib_summary.matching([("bib", False), ("*", False)])
        labels = {m.label for m in matched}
        assert labels == {"book", "article"}


class TestExactEstimates:
    """Structure-only queries must be estimated exactly."""

    QUERIES = [
        "/bib/book",
        "/bib/book/title",
        "//last",
        "/bib//last",
        "//author/last",
        "/bib/book/@year",
        "/bib/book/title/text()",
        "/bib/*",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_exact(self, bib_summary, query):
        doc = parse_document(BIB_XML)
        actual = len(evaluate_nodes(doc, query))
        assert estimate_cardinality(bib_summary, query) == actual

    @pytest.mark.parametrize(
        "query",
        [
            "/site/people/person/name",
            "//bidder",
            "//item/name",
            "/site/open_auctions/open_auction/bidder/increase",
        ],
    )
    def test_exact_on_auction(self, auction, query):
        doc, summary = auction
        actual = len(evaluate_nodes(doc, query))
        assert estimate_cardinality(summary, query) == actual


class TestPredicateEstimates:
    def test_equality_uses_distinct_values(self, bib_summary):
        # 2 books, year has 2 distinct values -> estimate 1 title.
        estimate = estimate_cardinality(
            bib_summary, "/bib/book[@year = '2000']/title"
        )
        assert estimate == pytest.approx(1.0)

    def test_existence_ratio(self, bib_summary):
        # Both books have authors: selectivity 1.
        estimate = estimate_cardinality(bib_summary, "/bib/book[author]")
        assert estimate == pytest.approx(2.0)

    def test_missing_path_estimates_zero(self, bib_summary):
        assert estimate_cardinality(bib_summary, "/bib/journal") == 0.0
        assert estimate_cardinality(
            bib_summary, "/bib/book[zzz = '1']"
        ) == 0.0

    def test_range_estimate_bounded(self, auction):
        doc, summary = auction
        query = "/site/open_auctions/open_auction[initial > 100]"
        actual = len(evaluate_nodes(doc, query))
        estimate = estimate_cardinality(summary, query)
        total = len(evaluate_nodes(
            doc, "/site/open_auctions/open_auction"
        ))
        assert 0 <= estimate <= total
        # Uniform-range assumption: within a factor-3 band of actual
        # (the generator draws uniformly, so this is a real check).
        if actual:
            assert estimate == pytest.approx(actual, rel=2.0)

    def test_not_inverts(self, bib_summary):
        with_address = estimate_cardinality(
            bib_summary, "/bib/book[author]"
        )
        without = estimate_cardinality(
            bib_summary, "/bib/book[not(author)]"
        )
        assert with_address + without == pytest.approx(2.0)

    def test_and_multiplies(self, auction):
        __, summary = auction
        single = estimate_cardinality(
            summary, "/site/people/person[address]"
        )
        double = estimate_cardinality(
            summary, "/site/people/person[address and phone]"
        )
        assert double <= single

    def test_contains_uses_default(self, bib_summary):
        estimate = estimate_cardinality(
            bib_summary, "/bib/book[contains(title, 'X')]"
        )
        assert estimate == pytest.approx(0.2)  # 2 books * 10%
