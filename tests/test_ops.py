"""Operational telemetry plane: cross-thread trace trees over the
serving stack, Prometheus exposition, the ops endpoint, the wide-event
request log, and the ``obs.top`` renderer."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    OpsServer,
    RequestLog,
    Tracer,
    parse_prometheus,
    to_chrome_trace,
    to_prometheus,
)
from repro.obs.top import render_snapshot
from repro.serve import ShardedStore

BOOK = "<bib><book><title>t{i}</title><year>200{i}</year></book></bib>"


@pytest.fixture()
def traced_store(tmp_path):
    """A 4-shard round-robin store with one document per shard, under
    an enabled tracer."""
    tracer = Tracer()
    store = ShardedStore.open(
        str(tmp_path / "store"),
        scheme="interval",
        shards=4,
        placement="round_robin",
        tracer=tracer,
    )
    for i in range(4):
        store.store_text(BOOK.format(i=i), name=f"doc-{i}")
    try:
        yield store, tracer
    finally:
        store.close()


class TestScatterTraceTree:
    """Acceptance: a 4-shard scatter's spans form ONE tree under a
    single ``serve.query`` root."""

    def test_scatter_spans_parent_under_one_root(self, traced_store):
        store, tracer = traced_store
        tracer.reset()
        result = store.query_all("//book/title")
        assert len(result.rows) == 4

        roots = [r for r in tracer.roots if r.name == "serve.query"]
        assert len(roots) == 1
        root = roots[0]
        assert root.attributes["request_id"].startswith("req-")

        shard_spans = [
            c for c in root.children if c.name == "serve.shard"
        ]
        assert sorted(s.attributes["shard"] for s in shard_spans) == (
            [0, 1, 2, 3]
        )
        # Each shard span parents its execute span, and the merge ran
        # under the same root — the whole fan-out is one tree.
        for shard_span in shard_spans:
            assert shard_span.parent_id == root.span_id
            assert any(
                child.name == "serve.execute"
                for child in shard_span.children
            )
        assert any(c.name == "serve.merge" for c in root.children)
        # No serve.* span escaped the tree as a detached root.
        assert not any(
            r.name.startswith("serve.") and r is not root
            for r in tracer.roots
        )
        assert not any(
            "detached" in span.attributes for span in root.walk()
        )

    def test_doc_scoped_query_tree_and_request_ids_are_distinct(
        self, traced_store
    ):
        store, tracer = traced_store
        docs = [record.doc_id for record in store.documents()]
        tracer.reset()
        store.query_pres(docs[0], "//title")
        store.query_pres(docs[1], "//title")
        roots = [r for r in tracer.roots if r.name == "serve.query"]
        assert len(roots) == 2
        ids = [r.attributes["request_id"] for r in roots]
        assert len(set(ids)) == 2

    def test_chrome_trace_has_stable_tids_and_connected_tree(
        self, traced_store
    ):
        store, tracer = traced_store
        tracer.reset()
        store.query_all("//book/year")
        trace = to_chrome_trace(tracer)
        spans = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and "span_id" in e["args"]
        ]
        # Thread-id mapping is stable: every OS thread maps to exactly
        # one small tid and vice versa.
        by_span_id = {e["args"]["span_id"]: e for e in spans}
        thread_to_tid: dict[int, int] = {}
        for span in tracer.finished:
            event = by_span_id[str(span.span_id)]
            tid = thread_to_tid.setdefault(span.thread_id, event["tid"])
            assert event["tid"] == tid
        assert len(set(thread_to_tid.values())) == len(thread_to_tid)
        # The parent_id args reconstruct one connected tree: every span
        # except the serve.query root reaches the root by walking up.
        root = next(
            e for e in spans if e["name"] == "serve.query"
        )
        for event in spans:
            current = event
            hops = 0
            while "parent_id" in current["args"]:
                current = by_span_id[current["args"]["parent_id"]]
                hops += 1
                assert hops < 100
            assert current is root


class TestPrometheusExposition:
    def test_registry_renders_and_parses(self):
        registry = MetricsRegistry()
        registry.counter("serve.queries").inc(7)
        registry.gauge("serve.in_flight").set(2)
        for _ in range(10):
            registry.histogram("serve.query_seconds").observe(0.004)
        text = to_prometheus(registry, windows=(60.0,))
        parsed = parse_prometheus(text)
        names = {s["name"] for s in parsed["samples"]}
        assert "xmlrel_serve_queries_total" in names
        assert "xmlrel_serve_in_flight" in names
        assert "xmlrel_serve_query_seconds_count" in names
        quantiles = [
            s for s in parsed["samples"]
            if s["name"] == "xmlrel_serve_query_seconds"
        ]
        assert {s["labels"]["quantile"] for s in quantiles} == {
            "0.5", "0.9", "0.99"
        }
        windowed = [
            s for s in parsed["samples"]
            if s["labels"].get("window") == "60s"
            and s["labels"].get("quantile") == "0.99"
        ]
        assert windowed and all(
            s["value"] > 0 for s in windowed
        )
        assert parsed["types"]["xmlrel_serve_queries_total"] == "counter"
        assert parsed["types"]["xmlrel_serve_query_seconds"] == "summary"

    def test_parser_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is { not exposition format")
        with pytest.raises(ValueError):
            parse_prometheus('metric{bad-label="x"} 1')
        with pytest.raises(ValueError):
            parse_prometheus("metric notanumber")


class TestOpsServer:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode()

    def test_endpoints_serve_metrics_snapshot_and_health(self, tmp_path):
        tracer = Tracer()
        with ShardedStore.open(
            str(tmp_path / "store"),
            scheme="interval",
            shards=2,
            placement="round_robin",
            tracer=tracer,
        ) as store:
            server = store.serve_ops()
            assert store.serve_ops() is server  # idempotent
            doc = store.store_text(BOOK.format(i=1), name="doc")
            store.query_pres(doc, "//title")
            store.query_all("//book")

            status, body = self._get(server.url + "/metrics")
            assert status == 200
            parsed = parse_prometheus(body)
            assert any(
                s["name"] == "xmlrel_serve_queries_total"
                and s["value"] >= 2
                for s in parsed["samples"]
            )
            # Windowed per-shard latency series are present.
            assert any(
                "shard" in s["name"]
                and s["labels"].get("window") == "60s"
                and s["labels"].get("quantile") == "0.99"
                for s in parsed["samples"]
            )

            status, body = self._get(server.url + "/healthz")
            health = json.loads(body)
            assert status == 200
            assert health["status"] == "ok"
            assert [s["status"] for s in health["shards"]] == ["ok", "ok"]
            assert health["in_flight"]["limit"] == 32
            assert health["error_budget"]["query"]["burn_rate"] == 0.0

            status, body = self._get(server.url + "/snapshot")
            snapshot = json.loads(body)
            assert status == 200
            assert snapshot["server"]["shards"] == 2
            assert snapshot["requests"]["stats"]["emitted"] >= 2
            events = snapshot["requests"]["tail"]
            assert any(e["event"] == "query" for e in events)
            assert any(e["event"] == "update" for e in events)

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_healthz_degrades_when_a_shard_dies(self, tmp_path):
        from repro.reliability.faults import ShardFaultPolicy

        policy = ShardFaultPolicy()
        tracer = Tracer()
        with ShardedStore.open(
            str(tmp_path / "store"),
            scheme="interval",
            shards=2,
            placement="round_robin",
            tracer=tracer,
            fault_policy=policy,
        ) as store:
            store.store_text(BOOK.format(i=1), name="doc")
            server = store.serve_ops()
            policy.crash_shard(1)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url + "/healthz")
            assert excinfo.value.code == 503
            health = json.loads(excinfo.value.read().decode())
            assert health["status"] == "degraded"
            assert health["shards"][1]["status"] == "down"


class TestWideEventLog:
    def test_query_events_carry_the_fanout_breakdown(self, tmp_path):
        log = RequestLog(capacity=64)
        with ShardedStore.open(
            str(tmp_path / "store"),
            scheme="interval",
            shards=2,
            placement="round_robin",
            request_log=log,
        ) as store:
            doc = store.store_text(BOOK.format(i=1), name="doc")
            store.query_pres(doc, "//title")  # cold
            store.query_pres(doc, "//title")  # warm
            events = [
                e for e in log.tail() if e["event"] == "query"
            ]
            assert len(events) == 2
            cold, warm = events
            for event in (cold, warm):
                assert event["outcome"] == "ok"
                assert event["request_id"].startswith("req-")
                assert event["deadline_seconds"] is None
                assert len(event["per_shard"]) == 1
                assert event["per_shard"][0]["read_from"] == "primary"
                assert "lint" in event["per_shard"][0]
            # plan_cached reflects the cache at event time (the cold
            # query populated it), and the warm query reused it.
            assert warm["per_shard"][0]["plan_cached"] is True

    def test_failed_queries_emit_events_and_outcome_metrics(
        self, tmp_path
    ):
        log = RequestLog(capacity=64)
        with ShardedStore.open(
            str(tmp_path / "store"),
            scheme="interval",
            shards=2,
            placement="round_robin",
            request_log=log,
        ) as store:
            doc = store.store_text(BOOK.format(i=1), name="doc")
            with pytest.raises(Exception):
                store.query_pres(doc, "//title", deadline=0.0)
            event = log.tail()[-1]
            assert event["event"] == "query"
            assert event["outcome"] == "deadline_exceeded"
            assert "error" in event
            assert event["deadline_slack_seconds"] < 0
            metrics = store.metrics
            assert metrics.counter_value(
                "serve.query.outcome.deadline_exceeded"
            ) == 1
            # Satellite fix: failed queries land in the latency
            # histogram too (lifetime count covers both outcomes).
            histogram = metrics.histogram("serve.query_seconds")
            assert histogram.count == 1

    def test_log_writes_jsonl_and_drops_instead_of_blocking(
        self, tmp_path
    ):
        path = str(tmp_path / "events.jsonl")
        log = RequestLog(capacity=8, path=path)
        for i in range(8):
            assert log.emit({"i": i})
        log.flush()
        log.close()
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
        ]
        assert [line["i"] for line in lines] == list(range(8))
        # The in-memory tail is bounded and emit never raises.
        ring = RequestLog(capacity=4)
        for i in range(100):
            ring.emit({"i": i})
        assert [e["i"] for e in ring.tail()] == [96, 97, 98, 99]
        assert ring.stats()["retained"] == 4

    def test_writer_queue_overflow_counts_drops(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = RequestLog(capacity=2, path=path)
        # Stall the writer by flooding faster than it can drain; with a
        # 2-slot queue some events must be dropped, never blocked on.
        started = time.perf_counter()
        for i in range(5000):
            log.emit({"i": i, "pad": "x" * 256})
        elapsed = time.perf_counter() - started
        log.close()
        assert elapsed < 5.0  # non-blocking: no backpressure stall
        stats = log.stats()
        assert stats["emitted"] == 5000
        assert stats["dropped"] + len(
            open(path, encoding="utf-8").readlines()
        ) >= stats["dropped"]  # file has whatever survived
        assert stats["retained"] == 2


class TestTopRenderer:
    def test_render_snapshot_builds_a_per_shard_table(self, tmp_path):
        tracer = Tracer()
        with ShardedStore.open(
            str(tmp_path / "store"),
            scheme="interval",
            shards=2,
            placement="round_robin",
            tracer=tracer,
        ) as store:
            store.store_text(BOOK.format(i=1), name="doc")
            server = store.serve_ops()
            store.query_all("//book")
            with urllib.request.urlopen(
                server.url + "/snapshot", timeout=5
            ) as response:
                snapshot = json.loads(response.read())
        frame = render_snapshot(snapshot)
        assert "status=ok" in frame
        assert "shard" in frame and "p99 ms" in frame
        # One row per shard, plus outcome and request-log summaries.
        lines = frame.splitlines()
        shard_rows = [
            line for line in lines
            if line.strip().startswith(("0 ", "1 "))
        ]
        assert len(shard_rows) == 2
        assert any("outcomes" in line for line in lines)
        assert any("request log" in line for line in lines)

    def test_render_survives_an_empty_snapshot(self):
        frame = render_snapshot({})
        assert "status=?" in frame
