"""Tests for the HTTP/JSON gateway: protocol, status mapping, quotas,
streaming, tracing, and the ops-plane integration."""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis import XPathAnalyzer
from repro.bench.loadgen import (
    LoadReport,
    Sample,
    percentile,
    run_load,
    saturation_knee,
)
from repro.errors import (
    DeadlineExceeded,
    DocumentNotFoundError,
    Overloaded,
    ProtocolError,
    ShardError,
    StorageError,
    XPathSyntaxError,
    error_payload,
    http_status,
)
from repro.obs.ops import parse_prometheus
from repro.obs.trace import Tracer
from repro.obs.top import render_snapshot
from repro.reliability import ShardFaultPolicy
from repro.serve import ShardedStore
from repro.serve.gateway import ClientQuotas
from repro.serve.protocol import (
    parse_query_payload,
    parse_query_params,
)
from repro.xml.dtd import parse_dtd

from tests.conftest import BIB_XML

BIB_DTD = """\
<!ELEMENT bib (book*, article*)>
<!ELEMENT book (title, author+, publisher?, price?)>
<!ATTLIST book year CDATA #REQUIRED id ID #IMPLIED>
<!ELEMENT article (title, author+)>
<!ATTLIST article year CDATA #REQUIRED id ID #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (last, first?)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT first (#PCDATA)>
"""

DOCS = 6


def _wait_for(predicate, timeout=5.0):
    """Spin until *predicate* is true.  The gateway lands metrics and
    wide events on the event loop *after* the response bytes reach the
    client, so observability assertions may race the loop by a hair."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.01)
    return True


def _open(tmp_path, name="gw", **kwargs):
    store = ShardedStore.open(
        str(tmp_path / name), scheme="interval", shards=3, **kwargs
    )
    doc_ids = [
        store.store_text(BIB_XML, name=f"bib-{i}") for i in range(DOCS)
    ]
    return store, doc_ids


def _get(url, expect_error=False):
    """GET returning ``(status, parsed_json)``."""
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        if not expect_error:
            raise
        return error.code, json.loads(error.read())


def _post(url, payload, headers=None, expect_error=False):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        method="POST",
        headers=headers or {},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        if not expect_error:
            raise
        return error.code, json.loads(error.read())


def _stream(url, payload):
    """POST a streaming query; returns the parsed NDJSON events
    (urllib undoes the chunked framing)."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request) as response:
        assert response.headers.get("Content-Type") == (
            "application/x-ndjson"
        )
        return [
            json.loads(line)
            for line in response.read().splitlines() if line
        ]


# -- the shared status table (satellite: one table, both servers) -------------


class TestStatusTable:
    def test_typed_errors_map_to_their_status(self):
        assert http_status(Overloaded("x")) == 429
        assert http_status(DeadlineExceeded("x")) == 504
        assert http_status(ShardError(1, ValueError("y"))) == 502
        assert http_status(ProtocolError("x")) == 400
        assert http_status(DocumentNotFoundError(7)) == 404
        assert http_status(XPathSyntaxError("x")) == 400
        assert http_status(StorageError("x")) == 500

    def test_unknown_errors_are_500(self):
        assert http_status(ValueError("x")) == 500
        assert http_status(RuntimeError("x")) == 500

    def test_subclasses_inherit_parent_status(self):
        class CustomShed(Overloaded):
            pass

        assert http_status(CustomShed("x")) == 429

    def test_payload_carries_typed_fields(self):
        payload = error_payload(Overloaded("x", in_flight=3, limit=3))
        assert payload["status"] == 429
        assert payload["error"] == "Overloaded"
        assert payload["in_flight"] == 3 and payload["limit"] == 3

        payload = error_payload(
            DeadlineExceeded("x", deadline_seconds=0.5, elapsed=0.7)
        )
        assert payload["deadline_seconds"] == 0.5
        assert payload["elapsed_seconds"] == 0.7

        payload = error_payload(ShardError(2, ValueError("y")))
        assert payload["shard"] == 2

        payload = error_payload(DocumentNotFoundError(11))
        assert payload["doc_id"] == 11 and payload["status"] == 404


# -- wire protocol ------------------------------------------------------------


class TestProtocol:
    def test_minimal_payload(self):
        spec = parse_query_payload({"xpath": "/bib/book"})
        assert spec.xpath == "/bib/book"
        assert spec.doc_id is None and not spec.stream

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            parse_query_payload({"xpath": "/a", "bogus": 1})

    def test_bad_values_rejected(self):
        with pytest.raises(ProtocolError, match="xpath"):
            parse_query_payload({"xpath": ""})
        with pytest.raises(ProtocolError, match="deadline"):
            parse_query_payload(
                {"xpath": "/a", "deadline_seconds": "soon"}
            )
        with pytest.raises(ProtocolError, match="deadline"):
            parse_query_payload({"xpath": "/a", "deadline_seconds": -1})
        with pytest.raises(ProtocolError, match="doc_id"):
            parse_query_payload({"xpath": "/a", "doc_id": "first"})
        with pytest.raises(ProtocolError, match="stream"):
            parse_query_payload({"xpath": "/a", "stream": "maybe"})
        with pytest.raises(ProtocolError, match="read_from"):
            parse_query_payload({"xpath": "/a", "read_from": "moon"})
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_query_payload(["not", "a", "dict"])

    def test_get_aliases(self):
        spec = parse_query_params(
            {"xpath": "/a", "doc": "3", "deadline": "1.5", "stream": "1"},
            default_client="curl",
        )
        assert spec.doc_id == 3
        assert spec.deadline == 1.5
        assert spec.stream and spec.client == "curl"


# -- quotas -------------------------------------------------------------------


class TestClientQuotas:
    def test_refill_math(self):
        quotas = ClientQuotas(rate=2.0, burst=2.0)
        assert quotas.try_admit("a", now=0.0) is None
        assert quotas.try_admit("a", now=0.0) is None
        retry = quotas.try_admit("a", now=0.0)
        assert retry == pytest.approx(0.5)  # 1 token at 2/s
        # After the hinted wait, exactly one more token exists.
        assert quotas.try_admit("a", now=0.5) is None
        assert quotas.try_admit("a", now=0.5) is not None

    def test_clients_are_independent(self):
        quotas = ClientQuotas(rate=1.0, burst=1.0)
        assert quotas.try_admit("a", now=0.0) is None
        assert quotas.try_admit("a", now=0.0) is not None
        assert quotas.try_admit("b", now=0.0) is None

    def test_eviction_bounds_the_table(self):
        quotas = ClientQuotas(rate=1.0, burst=1.0, max_clients=2)
        quotas.try_admit("a", now=0.0)
        quotas.try_admit("b", now=1.0)
        quotas.try_admit("c", now=2.0)  # evicts "a" (stalest)
        assert quotas.stats()["clients"] == 2
        # "a" restarts with a full burst: admitted again.
        assert quotas.try_admit("a", now=2.0) is None

    def test_disabled_quota_admits_everything(self):
        quotas = ClientQuotas(rate=None)
        for _ in range(100):
            assert quotas.try_admit("a") is None

    def test_invalid_parameters(self):
        with pytest.raises(StorageError):
            ClientQuotas(rate=0)
        with pytest.raises(StorageError):
            ClientQuotas(rate=5.0, burst=0.5)


# -- end-to-end over real HTTP ------------------------------------------------


class TestGatewayQueries:
    def test_materialized_matches_store(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            status, body = _post(
                gateway.url + "/query", {"xpath": "/bib/book/title"}
            )
            expected = store.query_all("/bib/book/title")
            assert status == 200
            assert body["row_count"] == len(expected.rows)
            assert [tuple(r) for r in body["rows"]] == list(expected.rows)
            assert body["shards_queried"] == 3
            assert not body["partial"]
            assert body["request_id"].startswith("req-")

    def test_doc_scoped_query(self, tmp_path):
        store, doc_ids = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            status, body = _get(
                gateway.url
                + f"/query?xpath=/bib/book/title&doc={doc_ids[0]}"
            )
            assert status == 200
            assert body["shards_queried"] == 1
            assert body["row_count"] == len(
                store.query_pres(doc_ids[0], "/bib/book/title")
            )

    def test_streaming_matches_materialized(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            events = _stream(
                gateway.url + "/query",
                {"xpath": "/bib/book/title", "stream": True},
            )
            kinds = [event["event"] for event in events]
            assert kinds[0] == "start" and kinds[-1] == "end"
            assert events[0]["shards"] == 3
            assert events[0]["request_id"].startswith("req-")
            streamed = sorted(
                tuple(row)
                for event in events if event["event"] == "rows"
                for row in event["rows"]
            )
            expected = store.query_all("/bib/book/title")
            assert streamed == list(expected.rows)
            assert events[-1]["outcome"] == "ok"
            assert events[-1]["rows"] == len(expected.rows)

    def test_bad_requests(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            status, body = _get(
                gateway.url + "/query?xpath=///", expect_error=True
            )
            assert status == 400
            assert body["error"] == "XPathSyntaxError"
            status, body = _post(
                gateway.url + "/query",
                {"xpath": "/bib", "bogus": 1},
                expect_error=True,
            )
            assert status == 400 and body["error"] == "ProtocolError"
            status, body = _get(
                gateway.url + "/query?xpath=/bib&doc=9999",
                expect_error=True,
            )
            assert status == 404
            assert body["error"] == "DocumentNotFoundError"
            assert body["doc_id"] == 9999
            status, body = _get(
                gateway.url + "/nowhere", expect_error=True
            )
            assert status == 404 and body["error"] == "NotFound"

    def test_healthz_and_stats(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway(quota_rate=100.0)
            status, health = _get(gateway.url + "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, stats = _get(gateway.url + "/stats")
            assert status == 200
            assert stats["url"] == gateway.url
            assert stats["store"]["shards"] == 3
            assert stats["quotas"]["rate_per_second"] == 100.0

    def test_unsatisfiable_short_circuit(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            analyzer = XPathAnalyzer.from_dtd(parse_dtd(BIB_DTD))
            gateway = store.serve_gateway(analyzer=analyzer)
            before = store.metrics.counter("serve.queries").value
            status, body = _get(
                gateway.url + "/query?xpath=/bib/magazine/title"
            )
            assert status == 200
            assert body["short_circuit"] and body["row_count"] == 0
            assert body["shards_queried"] == 0
            # The executor never saw the query: zero SQL, zero slots.
            assert store.metrics.counter("serve.queries").value == before
            # A satisfiable query still executes normally.
            status, body = _get(
                gateway.url + "/query?xpath=/bib/book/title"
            )
            assert status == 200 and body["row_count"] > 0


class TestGatewayAdmission:
    def test_quota_429_with_retry_after(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway(
                quota_rate=0.5, quota_burst=1.0
            )
            headers = {"X-Client-Id": "hammer"}
            status, _ = _post(
                gateway.url + "/query", {"xpath": "/bib"}, headers
            )
            assert status == 200
            request = urllib.request.Request(
                gateway.url + "/query",
                data=json.dumps({"xpath": "/bib"}).encode(),
                method="POST",
                headers=headers,
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            error = excinfo.value
            assert error.code == 429
            assert int(error.headers["Retry-After"]) >= 1
            body = json.loads(error.read())
            assert body["error"] == "Overloaded"
            assert body["status"] == 429
            assert "quota" in body["message"]
            rejections = store.metrics.counter(
                "gateway.quota_rejections"
            ).value
            assert rejections == 1
            # A different client is not affected.
            status, _ = _post(
                gateway.url + "/query", {"xpath": "/bib"},
                {"X-Client-Id": "polite"},
            )
            assert status == 200

    def test_executor_gate_429(self, tmp_path):
        store, _ = _open(tmp_path, max_in_flight=2)
        with store:
            gateway = store.serve_gateway()
            # Drain the global admission gate by hand: the next HTTP
            # request must shed with the executor's own Overloaded.
            assert store.executor._gate.acquire(blocking=False)
            assert store.executor._gate.acquire(blocking=False)
            try:
                status, body = _get(
                    gateway.url + "/query?xpath=/bib",
                    expect_error=True,
                )
                assert status == 429
                assert body["error"] == "Overloaded"
                assert body["limit"] == 2
            finally:
                store.executor._gate.release()
                store.executor._gate.release()
            status, _ = _get(gateway.url + "/query?xpath=/bib")
            assert status == 200

    def test_deadline_504(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            status, body = _post(
                gateway.url + "/query",
                {"xpath": "/bib/book", "deadline_seconds": 1e-6},
                expect_error=True,
            )
            assert status == 504
            assert body["error"] == "DeadlineExceeded"
            assert body["deadline_seconds"] == 1e-6

    def test_default_deadline_applies(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway(default_deadline=1e-6)
            status, body = _get(
                gateway.url + "/query?xpath=/bib", expect_error=True
            )
            assert status == 504 and body["error"] == "DeadlineExceeded"


class TestGatewayDegradedModes:
    def test_partial_mode_is_206(self, tmp_path):
        policy = ShardFaultPolicy()
        store, _ = _open(
            tmp_path, on_shard_error="partial", fault_policy=policy
        )
        with store:
            gateway = store.serve_gateway()
            policy.fail_shard(1)
            status, body = _get(
                gateway.url + "/query?xpath=/bib/book/title",
                expect_error=True,
            )
            assert status == 206
            assert body["partial"]
            assert [f["shard"] for f in body["failed_shards"]] == [1]
            assert body["row_count"] > 0

    def test_partial_mode_streams_shard_errors(self, tmp_path):
        policy = ShardFaultPolicy()
        store, _ = _open(
            tmp_path, on_shard_error="partial", fault_policy=policy
        )
        with store:
            gateway = store.serve_gateway()
            policy.fail_shard(1)
            events = _stream(
                gateway.url + "/query",
                {"xpath": "/bib/book/title", "stream": True},
            )
            kinds = [event["event"] for event in events]
            assert "shard_error" in kinds
            shard_errors = [
                e for e in events if e["event"] == "shard_error"
            ]
            assert [e["shard"] for e in shard_errors] == [1]
            assert events[-1]["event"] == "end"
            assert events[-1]["outcome"] == "partial"
            assert events[-1]["failed_shards"][0]["shard"] == 1
            assert events[-1]["rows"] > 0

    def test_fail_mode_is_502(self, tmp_path):
        policy = ShardFaultPolicy()
        store, _ = _open(
            tmp_path, on_shard_error="fail", fault_policy=policy
        )
        with store:
            gateway = store.serve_gateway()
            policy.fail_shard(0)
            status, body = _get(
                gateway.url + "/query?xpath=/bib/book/title",
                expect_error=True,
            )
            assert status == 502
            assert body["error"] == "ShardError"
            assert body["shard"] == 0


# -- wire robustness: malformed requests over a raw socket --------------------


class TestWireRobustness:
    @staticmethod
    def _raw(gateway, request: bytes) -> bytes:
        """Send *request* raw and read to EOF (the error path and the
        streaming path both close the connection)."""
        raw = socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=5
        )
        try:
            raw.sendall(request)
            data = b""
            while True:
                chunk = raw.recv(4096)
                if not chunk:
                    break
                data += chunk
        finally:
            raw.close()
        return data

    def test_non_numeric_content_length_is_400(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            data = self._raw(
                gateway,
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: banana\r\n\r\n",
            )
            assert data.startswith(b"HTTP/1.1 400")
            body = json.loads(data.partition(b"\r\n\r\n")[2])
            assert body["error"] == "ProtocolError"
            assert "Content-Length" in body["message"]

    def test_negative_content_length_is_400(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            data = self._raw(
                gateway,
                b"GET /query?xpath=/bib HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: -7\r\n\r\n",
            )
            assert data.startswith(b"HTTP/1.1 400")
            body = json.loads(data.partition(b"\r\n\r\n")[2])
            assert body["error"] == "ProtocolError"

    def test_streamed_short_circuit_closes_connection(self, tmp_path):
        """A short-circuited stream is chunked with Connection: close;
        the handler must actually close instead of waiting for reuse."""
        store, _ = _open(tmp_path)
        with store:
            analyzer = XPathAnalyzer.from_dtd(parse_dtd(BIB_DTD))
            gateway = store.serve_gateway(analyzer=analyzer)
            payload = json.dumps(
                {"xpath": "/bib/magazine", "stream": True}
            ).encode()
            data = self._raw(
                gateway,
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                + payload,
            )
            head = data.partition(b"\r\n\r\n")[0]
            assert head.startswith(b"HTTP/1.1 200")
            assert b"Connection: close" in head
            assert b'"short_circuit"' in data


# -- tracing + wide events ----------------------------------------------------


class TestGatewayObservability:
    def test_one_trace_tree_per_request(self, tmp_path):
        store, _ = _open(tmp_path, tracer=Tracer(enabled=True))
        with store:
            gateway = store.serve_gateway()
            _post(gateway.url + "/query", {"xpath": "/bib/book/title"})
            roots = [
                span for span in store.tracer.roots
                if span.name == "gateway.request"
            ]
            assert len(roots) == 1
            root = roots[0]
            names = [span.name for span in root.walk()]
            assert "gateway.parse" in names
            assert "gateway.admit" in names
            assert "serve.query" in names
            assert "serve.shard" in names
            # Executor spans joined the gateway tree instead of
            # detaching into their own roots.
            assert not any(
                span.attributes.get("detached")
                for span in root.walk()
            )
            serve_roots = [
                span for span in store.tracer.roots
                if span.name == "serve.query"
            ]
            assert serve_roots == []

    def test_streamed_request_traces_one_tree(self, tmp_path):
        store, _ = _open(tmp_path, tracer=Tracer(enabled=True))
        with store:
            gateway = store.serve_gateway()
            _stream(
                gateway.url + "/query",
                {"xpath": "/bib/book/title", "stream": True},
            )
            roots = [
                span for span in store.tracer.roots
                if span.name == "gateway.request"
            ]
            assert len(roots) == 1
            names = [span.name for span in roots[0].walk()]
            assert "serve.query" in names and "serve.shard" in names

    def test_http_wide_events_share_request_id(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            _post(gateway.url + "/query", {"xpath": "/bib/book/title"})
            assert _wait_for(
                lambda: any(
                    e["event"] == "http"
                    for e in store.executor.request_log.tail(10)
                )
            )
            events = store.executor.request_log.tail(10)
            http_events = [
                e for e in events if e["event"] == "http"
            ]
            query_events = [
                e for e in events if e["event"] == "query"
            ]
            assert len(http_events) == 1
            assert len(query_events) == 1
            # The gateway's request id flows into the executor's wide
            # event: one id connects HTTP access log and query record.
            assert (
                http_events[0]["request_id"]
                == query_events[0]["request_id"]
            )
            assert http_events[0]["status"] == 200
            assert http_events[0]["route"] == "query"
            assert http_events[0]["elapsed_seconds"] > 0

    def test_gateway_metrics_populate(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            _post(gateway.url + "/query", {"xpath": "/bib"})
            _get(gateway.url + "/healthz")
            assert _wait_for(
                lambda: store.metrics.counter("gateway.requests").value
                == 2
            )
            snapshot = store.metrics.snapshot(prefix="gateway.")
            assert snapshot["counters"]["gateway.requests"] == 2
            assert snapshot["counters"]["gateway.status.200"] == 2
            assert (
                "gateway.route.query.seconds"
                in snapshot["histograms"]
            )

    def test_top_renders_gateway_section(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            ops = store.serve_ops()
            gateway = store.serve_gateway(quota_rate=1.0, quota_burst=1.0)
            headers = {"X-Client-Id": "top-test"}
            _post(gateway.url + "/query", {"xpath": "/bib"}, headers)
            _post(
                gateway.url + "/query", {"xpath": "/bib"}, headers,
                expect_error=True,
            )  # quota rejection
            assert _wait_for(
                lambda: store.metrics.counter(
                    "gateway.status.429"
                ).value == 1
            )
            status, snapshot = _get(ops.url + "/snapshot")
            assert status == 200
            frame = render_snapshot(snapshot)
            assert "gateway (" in frame
            assert "query" in frame
            assert "quota_rejections=1" in frame
            assert "statuses:" in frame
            assert "429=1" in frame


# -- satellite: concurrent /metrics scrapes during gateway load ---------------


class TestConcurrentScrapes:
    def test_metrics_scrapes_during_gateway_queries(self, tmp_path):
        """Hammer ``/metrics`` from several threads while streamed and
        materialized gateway queries are in flight.  Every scrape must
        stay parseable and the run must stay lock-order clean (the CI
        concurrency job reruns this under ``XMLREL_LOCK_HARNESS=1``)."""
        store, _ = _open(tmp_path)
        with store:
            ops = store.serve_ops()
            gateway = store.serve_gateway()
            stop = threading.Event()
            failures: list[str] = []
            parsed_counts: list[int] = []

            def scraper():
                while not stop.is_set():
                    try:
                        with urllib.request.urlopen(
                            ops.url + "/metrics", timeout=5
                        ) as response:
                            text = response.read().decode()
                        parsed = parse_prometheus(text)
                        parsed_counts.append(len(parsed["samples"]))
                    except Exception as error:  # surfaced below
                        failures.append(
                            f"{type(error).__name__}: {error}"
                        )
                        return

            threads = [
                threading.Thread(
                    target=scraper, name=f"scraper-{i}", daemon=True
                )
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                for i in range(10):
                    _post(
                        gateway.url + "/query",
                        {
                            "xpath": "/bib/book/title",
                            "stream": i % 2 == 0,
                        },
                    ) if i % 2 else _stream(
                        gateway.url + "/query",
                        {"xpath": "/bib/book/title", "stream": True},
                    )
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
            assert not failures, failures
            assert parsed_counts and all(n > 0 for n in parsed_counts)
            # Gateway series made it into the exposition.
            with urllib.request.urlopen(
                ops.url + "/metrics", timeout=5
            ) as response:
                text = response.read().decode()
            parsed = parse_prometheus(text)
            names = {sample["name"] for sample in parsed["samples"]}
            assert "xmlrel_gateway_requests_total" in names


# -- the load generator -------------------------------------------------------


class TestLoadgen:
    def test_percentile(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0], 0.99) == 3.0
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_open_loop_against_live_gateway(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            report = run_load(
                gateway.url,
                xpath="/bib/book/title",
                rate=40,
                duration=0.5,
            )
            summary = report.to_dict()
            assert summary["requests"] >= 20
            assert summary["ok"] == summary["requests"]
            assert summary["statuses"] == {
                "200": summary["requests"]
            }
            assert summary["latency_seconds"]["p50"] > 0
            assert summary["first_byte_seconds"]["p50"] > 0

    def test_streamed_load_measures_first_row(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            report = run_load(
                gateway.url,
                xpath="/bib/book/title",
                rate=20,
                duration=0.5,
                stream=True,
            )
            summary = report.to_dict()
            assert summary["ok"] > 0
            first_row = summary["first_row_seconds"]["p50"]
            full = summary["latency_seconds"]["p50"]
            assert first_row is not None and first_row <= full

    def test_achieved_rate_excludes_completion_drain(self):
        """One near-timeout straggler stretches duration_seconds but
        must not deflate achieved_rate below the knee criterion."""
        report = LoadReport(
            offered_rate=100.0,
            duration_seconds=11.0,  # 1s of arrivals + 10s of drain
            arrival_seconds=1.0,
        )
        for _ in range(100):
            report.samples.append(Sample(status=200, latency=0.01))
        summary = report.to_dict()
        assert summary["achieved_rate"] == pytest.approx(100.0)
        assert summary["arrival_seconds"] == pytest.approx(1.0)
        assert summary["drain_seconds"] == pytest.approx(10.0)
        # An un-saturated server with one slow tail is not a knee.
        assert saturation_knee([report]) is None

    def test_achieved_rate_counts_only_completed(self):
        report = LoadReport(
            offered_rate=100.0,
            duration_seconds=1.0,
            arrival_seconds=1.0,
        )
        for _ in range(50):
            report.samples.append(Sample(status=200, latency=0.01))
        for _ in range(50):
            report.samples.append(
                Sample(status=0, latency=1.0, error="TimeoutError: x")
            )
        summary = report.to_dict()
        assert summary["achieved_rate"] == pytest.approx(50.0)

    def test_saturation_knee_detection(self):
        def synthetic(rate, p99, shed=0, total=100):
            report = LoadReport(
                offered_rate=rate, duration_seconds=1.0
            )
            for i in range(total - shed):
                report.samples.append(
                    Sample(status=200, latency=p99)
                )
            for _ in range(shed):
                report.samples.append(
                    Sample(status=429, latency=0.001)
                )
            return report

        healthy = [synthetic(50, 0.005), synthetic(100, 0.006)]
        assert saturation_knee(healthy) is None
        saturated = healthy + [synthetic(200, 0.005, shed=30)]
        knee = saturation_knee(saturated)
        assert knee is not None
        assert knee["offered_rate"] == 200
        assert "shed" in knee["reason"]
        blown = healthy + [synthetic(400, 0.1)]
        knee = saturation_knee(blown)
        assert knee["offered_rate"] == 400
        assert "p99" in knee["reason"]


# -- lifecycle ----------------------------------------------------------------


class TestGatewayLifecycle:
    def test_serve_gateway_idempotent_and_closed_with_store(
        self, tmp_path
    ):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            assert store.serve_gateway() is gateway
            port = gateway.port
        # After close the socket is gone.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)

    def test_keep_alive_connection_reuse(self, tmp_path):
        store, _ = _open(tmp_path)
        with store:
            gateway = store.serve_gateway()
            raw = socket.create_connection(
                ("127.0.0.1", gateway.port), timeout=5
            )
            try:
                for _ in range(2):
                    raw.sendall(
                        b"GET /query?xpath=/bib HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n"
                    )
                    data = b""
                    while b"\r\n\r\n" not in data:
                        data += raw.recv(4096)
                    head, _, rest = data.partition(b"\r\n\r\n")
                    assert b"200 OK" in head
                    assert b"Connection: keep-alive" in head
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    while len(rest) < length:
                        rest += raw.recv(4096)
            finally:
                raw.close()

    def test_stream_after_stream_completes(self, tmp_path):
        """A stream releases its admission slot at finish: back-to-back
        streams on a max_in_flight=1 store must all succeed."""
        store, _ = _open(tmp_path, max_in_flight=1)
        with store:
            gateway = store.serve_gateway()
            for _ in range(3):
                events = _stream(
                    gateway.url + "/query",
                    {"xpath": "/bib/book", "stream": True},
                )
                assert events[-1]["event"] == "end"
            assert (
                store.metrics.gauge("serve.in_flight").value == 0
            )

    def test_stream_hangup_before_first_chunk_releases_slot(
        self, tmp_path
    ):
        """A client that vanishes before even the start event reaches
        the wire must not leak the admission slot: finish() runs on
        every exit path, including a hangup during the head write."""
        store, _ = _open(tmp_path, max_in_flight=1)
        with store:
            gateway = store.serve_gateway()

            class HangupWriter:
                def write(self, data):
                    raise ConnectionResetError("client went away")

                async def drain(self):
                    pass

            spec = parse_query_payload(
                {"xpath": "/bib/book", "stream": True}
            )
            targets = {
                shard: store.shard_map.docs_for_shard(shard)
                for shard in store.pools
            }

            async def hangup():
                with pytest.raises(ConnectionResetError):
                    await gateway._stream_query(
                        HangupWriter(),
                        spec,
                        targets,
                        gateway.tracer.capture(),
                        "req-hangup",
                    )

            # Pre-fix, the first hangup pinned the only slot forever
            # and every later attempt died Overloaded.
            for _ in range(3):
                asyncio.run(hangup())
            assert _wait_for(
                lambda: store.metrics.gauge("serve.in_flight").value == 0
            )
            status, body = _post(
                gateway.url + "/query", {"xpath": "/bib/book"}
            )
            assert status == 200 and body["row_count"] > 0
