"""Tests for subtree insertion/deletion and the per-scheme update costs."""

import pytest

from repro.core.registry import create_scheme
from repro.errors import UpdateError
from repro.relational.database import Database
from repro.updates import UpdateStats, delete_subtree, insert_subtree
from repro.xml import parse_document, parse_fragment
from repro.xml.dom import deep_equal
from repro.xpath import evaluate_nodes

UPDATABLE = ("edge", "binary", "interval", "dewey")

SRC = (
    "<bib>"
    "<book year='1994'><title>One</title><price>10</price></book>"
    "<book year='2000'><title>Two</title><price>20</price></book>"
    "<book year='2002'><title>Three</title><price>30</price></book>"
    "</bib>"
)

NEW_BOOK = "<book year='1999'><title>New</title><price>15</price></book>"


def expected_after(operation):
    """Apply *operation* to a fresh DOM and return the mutated document."""
    doc = parse_document(SRC)
    operation(doc)
    return doc


@pytest.fixture(params=UPDATABLE)
def populated(request):
    with Database() as db:
        scheme = create_scheme(request.param, db)
        doc = parse_document(SRC)
        result = scheme.store(doc, "bib")
        yield scheme, result.doc_id, doc


class TestInsert:
    def test_append_child(self, populated):
        scheme, doc_id, doc = populated
        root_pre = doc.root_element.order_key
        stats = insert_subtree(
            scheme, doc_id, root_pre, parse_fragment(NEW_BOOK), index=3
        )
        assert stats.rows_inserted == 6  # book + @year + 2 leaves + 2 texts

        def mutate(d):
            d.root_element.append_child(parse_fragment(NEW_BOOK))

        assert deep_equal(scheme.reconstruct(doc_id), expected_after(mutate))

    def test_insert_in_middle(self, populated):
        scheme, doc_id, doc = populated
        root_pre = doc.root_element.order_key
        insert_subtree(
            scheme, doc_id, root_pre, parse_fragment(NEW_BOOK), index=1
        )

        def mutate(d):
            d.root_element.insert_child(1, parse_fragment(NEW_BOOK))

        assert deep_equal(scheme.reconstruct(doc_id), expected_after(mutate))

    def test_insert_at_front(self, populated):
        scheme, doc_id, doc = populated
        root_pre = doc.root_element.order_key
        insert_subtree(
            scheme, doc_id, root_pre, parse_fragment(NEW_BOOK), index=0
        )

        def mutate(d):
            d.root_element.insert_child(0, parse_fragment(NEW_BOOK))

        assert deep_equal(scheme.reconstruct(doc_id), expected_after(mutate))

    def test_inserted_data_queryable(self, populated):
        scheme, doc_id, doc = populated
        root_pre = doc.root_element.order_key
        insert_subtree(
            scheme, doc_id, root_pre, parse_fragment(NEW_BOOK), index=1
        )
        nodes = scheme.query_nodes(
            doc_id, "/bib/book[@year = '1999']/title"
        )
        assert [n.string_value for n in nodes] == ["New"]
        # Numeric predicates see the new leaf values too.
        pres = scheme.query_pres(doc_id, "/bib/book[price = 15]/@year")
        assert len(pres) == 1

    def test_insert_under_leaf_invalidates_content(self, populated):
        scheme, doc_id, doc = populated
        title_pre = evaluate_nodes(doc, "/bib/book[1]/title")[0].order_key
        insert_subtree(
            scheme, doc_id, title_pre, parse_fragment("<sub>x</sub>"),
            index=1,
        )
        # 'One' is no longer the *text-only* content of that title.
        assert scheme.query_pres(doc_id, "/bib/book[title = 'One']") == []

    def test_bad_index_rejected(self, populated):
        scheme, doc_id, doc = populated
        root_pre = doc.root_element.order_key
        with pytest.raises(UpdateError, match="out of range"):
            insert_subtree(
                scheme, doc_id, root_pre, parse_fragment("<x/>"), index=9
            )

    def test_attached_fragment_rejected(self, populated):
        scheme, doc_id, doc = populated
        attached = doc.root_element.find("book")
        with pytest.raises(UpdateError, match="detached"):
            insert_subtree(scheme, doc_id, 1, attached)

    def test_node_count_updated(self, populated):
        scheme, doc_id, doc = populated
        before = scheme.catalog.get(doc_id).node_count
        insert_subtree(
            scheme, doc_id, doc.root_element.order_key,
            parse_fragment("<x/>"), index=0,
        )
        assert scheme.catalog.get(doc_id).node_count == before + 1


class TestDelete:
    def test_delete_middle_child(self, populated):
        scheme, doc_id, doc = populated
        second = evaluate_nodes(doc, "/bib/book[2]")[0].order_key
        stats = delete_subtree(scheme, doc_id, second)
        assert stats.rows_deleted == 6

        def mutate(d):
            book = d.root_element.find_all("book")[1]
            d.root_element.remove_child(book)

        assert deep_equal(scheme.reconstruct(doc_id), expected_after(mutate))

    def test_deleted_data_not_queryable(self, populated):
        scheme, doc_id, doc = populated
        second = evaluate_nodes(doc, "/bib/book[2]")[0].order_key
        delete_subtree(scheme, doc_id, second)
        assert scheme.query_pres(doc_id, "/bib/book[@year = '2000']") == []
        assert len(scheme.query_pres(doc_id, "//book")) == 2

    def test_delete_missing_node_rejected(self, populated):
        scheme, doc_id, __ = populated
        with pytest.raises(UpdateError, match="no node"):
            delete_subtree(scheme, doc_id, 9999)

    def test_insert_then_delete_roundtrip(self, populated):
        scheme, doc_id, doc = populated
        root_pre = doc.root_element.order_key
        insert_subtree(
            scheme, doc_id, root_pre, parse_fragment(NEW_BOOK), index=1
        )
        new_pre = scheme.query_pres(doc_id, "/bib/book[@year = '1999']")[0]
        delete_subtree(scheme, doc_id, new_pre)
        assert deep_equal(scheme.reconstruct(doc_id), parse_document(SRC))


class TestUpdateCosts:
    """The published asymmetry: interval pays globally, edge/dewey locally."""

    @staticmethod
    def build(scheme_name):
        db = Database()
        scheme = create_scheme(scheme_name, db)
        doc = parse_document(
            "<r>" + "<s><t>x</t></s>" * 50 + "</r>"
        )
        result = scheme.store(doc, "wide")
        return db, scheme, result.doc_id, doc

    def front_insert_cost(self, scheme_name):
        db, scheme, doc_id, doc = self.build(scheme_name)
        try:
            stats = insert_subtree(
                scheme, doc_id, doc.root_element.order_key,
                parse_fragment("<s><t>new</t></s>"), index=0,
            )
            return stats.rows_updated
        finally:
            db.close()

    def test_interval_renumbers_globally(self):
        # Everything after the insertion point shifts: ~150 nodes, twice
        # (pre and parent_pre), plus ancestors and sibling ordinals.
        assert self.front_insert_cost("interval") > 150

    def test_edge_touches_siblings_only(self):
        assert self.front_insert_cost("edge") == 50

    def test_dewey_relabels_sibling_subtrees(self):
        # 50 following siblings x 3 nodes each.
        assert self.front_insert_cost("dewey") == 150

    def test_ordering_matches_published_story(self):
        edge_cost = self.front_insert_cost("edge")
        dewey_cost = self.front_insert_cost("dewey")
        interval_cost = self.front_insert_cost("interval")
        assert edge_cost < dewey_cost < interval_cost


class TestUnsupportedSchemes:
    @pytest.mark.parametrize("scheme_name", ["xrel", "universal"])
    def test_update_rejected(self, scheme_name):
        with Database() as db:
            scheme = create_scheme(scheme_name, db)
            result = scheme.store(parse_document(SRC), "bib")
            with pytest.raises(UpdateError, match="does not implement"):
                insert_subtree(
                    scheme, result.doc_id, 1, parse_fragment("<x/>")
                )
            with pytest.raises(UpdateError, match="does not implement"):
                delete_subtree(scheme, result.doc_id, 1)


def test_update_stats_accounting():
    stats = UpdateStats(rows_inserted=3, rows_updated=2, rows_deleted=1)
    assert stats.rows_touched == 6
