"""Unit tests for the in-memory XPath evaluator."""

import math

import pytest

from repro.errors import XPathEvaluationError
from repro.xml import parse_document
from repro.xpath import evaluate, evaluate_nodes
from repro.xpath.evaluator import (
    format_number,
    xpath_boolean,
    xpath_number,
    xpath_string,
)

BIB = """\
<bib>
  <book year="1994" id="b1">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000" id="b2">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann</publisher>
    <price>39.95</price>
  </book>
  <article year="2001" id="a1">
    <title>Storage of XML</title>
    <author><last>Florescu</last></author>
  </article>
</bib>
"""


@pytest.fixture(scope="module")
def doc():
    return parse_document(BIB)


def tags(nodes):
    return [getattr(n, "tag", None) for n in nodes]


def texts(nodes):
    return [n.string_value for n in nodes]


class TestPaths:
    def test_child_path(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book/title")
        assert texts(nodes) == ["TCP/IP Illustrated", "Data on the Web"]

    def test_descendant_path(self, doc):
        nodes = evaluate_nodes(doc, "//last")
        assert texts(nodes) == [
            "Stevens", "Abiteboul", "Buneman", "Suciu", "Florescu",
        ]

    def test_wildcard(self, doc):
        nodes = evaluate_nodes(doc, "/bib/*")
        assert tags(nodes) == ["book", "book", "article"]

    def test_attribute_axis(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book/@year")
        assert [n.value for n in nodes] == ["1994", "2000"]

    def test_attribute_wildcard(self, doc):
        nodes = evaluate_nodes(doc, "/bib/article/@*")
        assert [n.name for n in nodes] == ["year", "id"]

    def test_text_kind_test(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book/title/text()")
        assert [n.data for n in nodes] == [
            "TCP/IP Illustrated", "Data on the Web",
        ]

    def test_parent_step(self, doc):
        nodes = evaluate_nodes(doc, "//last/../..")
        assert tags(nodes) == ["book", "book", "article"]

    def test_self_step(self, doc):
        nodes = evaluate_nodes(doc, "/bib/.")
        assert tags(nodes) == ["bib"]

    def test_relative_path_from_element(self, doc):
        book = evaluate_nodes(doc, "/bib/book")[0]
        nodes = evaluate_nodes(book, "author/last")
        assert texts(nodes) == ["Stevens"]

    def test_absolute_path_from_element(self, doc):
        book = evaluate_nodes(doc, "/bib/book")[1]
        nodes = evaluate_nodes(book, "/bib/article")
        assert len(nodes) == 1

    def test_document_order_and_dedup(self, doc):
        # Both arms select overlapping sets; result is deduped, in order.
        nodes = evaluate_nodes(doc, "//author/last | //last")
        assert texts(nodes) == [
            "Stevens", "Abiteboul", "Buneman", "Suciu", "Florescu",
        ]

    def test_descendant_or_self_axis(self, doc):
        nodes = evaluate_nodes(doc, "/bib/descendant-or-self::article")
        assert len(nodes) == 1

    def test_empty_result(self, doc):
        assert evaluate_nodes(doc, "/bib/journal") == []


class TestReverseAxes:
    def test_ancestor(self, doc):
        nodes = evaluate_nodes(doc, "//last/ancestor::*")
        assert set(tags(nodes)) == {"bib", "book", "article", "author"}

    def test_ancestor_or_self(self, doc):
        last = evaluate_nodes(doc, "//last")[0]
        nodes = evaluate_nodes(last, "ancestor-or-self::*")
        assert tags(nodes) == ["bib", "book", "author", "last"]

    def test_preceding_sibling(self, doc):
        nodes = evaluate_nodes(doc, "/bib/article/preceding-sibling::book")
        assert len(nodes) == 2

    def test_following_sibling(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book[1]/following-sibling::*")
        assert tags(nodes) == ["book", "article"]

    def test_proximity_position_on_reverse_axis(self, doc):
        # preceding-sibling::book[1] is the *nearest* preceding book.
        nodes = evaluate_nodes(
            doc, "/bib/article/preceding-sibling::book[1]/@id"
        )
        assert [n.value for n in nodes] == ["b2"]

    def test_following_axis(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book[2]/following::title")
        assert texts(nodes) == ["Storage of XML"]

    def test_preceding_axis(self, doc):
        nodes = evaluate_nodes(doc, "/bib/article/preceding::publisher")
        assert texts(nodes) == ["Addison-Wesley", "Morgan Kaufmann"]


class TestPredicates:
    def test_positional(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book[2]/title")
        assert texts(nodes) == ["Data on the Web"]

    def test_position_function(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book[position() = 1]/title")
        assert texts(nodes) == ["TCP/IP Illustrated"]

    def test_last_function(self, doc):
        nodes = evaluate_nodes(doc, "//author[last()]/last")
        assert texts(nodes) == ["Stevens", "Suciu", "Florescu"]

    def test_attribute_value(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book[@year = '2000']/title")
        assert texts(nodes) == ["Data on the Web"]

    def test_numeric_comparison_on_attribute(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book[@year > 1995]/title")
        assert texts(nodes) == ["Data on the Web"]

    def test_child_value(self, doc):
        nodes = evaluate_nodes(
            doc, "/bib/book[publisher = 'Addison-Wesley']/@id"
        )
        assert [n.value for n in nodes] == ["b1"]

    def test_existence_predicate(self, doc):
        nodes = evaluate_nodes(doc, "/bib/*[author/first]")
        assert [n.get_attribute("id") for n in nodes] == ["b1", "b2"]

    def test_implicit_existential_multi_author(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book[author/last = 'Suciu']/@id")
        assert [n.value for n in nodes] == ["b2"]

    def test_and_or(self, doc):
        nodes = evaluate_nodes(
            doc, "/bib/book[@year > 1990 and price < 50]/@id"
        )
        assert [n.value for n in nodes] == ["b2"]

    def test_contains(self, doc):
        nodes = evaluate_nodes(doc, "//title[contains(., 'Web')]")
        assert texts(nodes) == ["Data on the Web"]

    def test_starts_with(self, doc):
        nodes = evaluate_nodes(doc, "//last[starts-with(., 'S')]")
        assert texts(nodes) == ["Stevens", "Suciu"]

    def test_not(self, doc):
        nodes = evaluate_nodes(doc, "/bib/*[not(author/first)]")
        assert tags(nodes) == ["article"]

    def test_count_in_predicate(self, doc):
        nodes = evaluate_nodes(doc, "/bib/book[count(author) = 3]/@id")
        assert [n.value for n in nodes] == ["b2"]

    def test_chained_predicates(self, doc):
        nodes = evaluate_nodes(doc, "//book[author][2]/@id")
        assert [n.value for n in nodes] == ["b2"]

    def test_filter_expr_with_position(self, doc):
        nodes = evaluate_nodes(doc, "(//last)[2]")
        assert texts(nodes) == ["Abiteboul"]


class TestScalars:
    def test_count(self, doc):
        assert evaluate(doc, "count(//author)") == 5.0

    def test_sum(self, doc):
        assert evaluate(doc, "sum(//price)") == pytest.approx(105.90)

    def test_arithmetic(self, doc):
        assert evaluate(doc, "1 + 2 * 3") == 7.0
        assert evaluate(doc, "10 div 4") == 2.5
        assert evaluate(doc, "10 mod 3") == 1.0
        assert evaluate(doc, "-(2 + 3)") == -5.0

    def test_div_by_zero(self, doc):
        assert evaluate(doc, "1 div 0") == math.inf
        assert math.isnan(evaluate(doc, "0 div 0"))
        assert math.isnan(evaluate(doc, "1 mod 0"))

    def test_string_functions(self, doc):
        assert evaluate(doc, "concat('a', 'b', 'c')") == "abc"
        assert evaluate(doc, "string-length('abcd')") == 4.0
        assert evaluate(doc, "normalize-space('  a   b ')") == "a b"
        assert evaluate(doc, "substring('12345', 2, 3)") == "234"

    def test_name_function(self, doc):
        assert evaluate(doc, "name(/bib/*[1])") == "book"

    def test_string_of_node_set_takes_first(self, doc):
        assert evaluate(doc, "string(//last)") == "Stevens"

    def test_boolean_conversions(self, doc):
        assert evaluate(doc, "boolean(//book)") is True
        assert evaluate(doc, "boolean(//journal)") is False
        assert evaluate(doc, "boolean(0)") is False
        assert evaluate(doc, "boolean('x')") is True

    def test_rounding(self, doc):
        assert evaluate(doc, "floor(2.7)") == 2.0
        assert evaluate(doc, "ceiling(2.1)") == 3.0
        assert evaluate(doc, "round(2.5)") == 3.0

    def test_number_of_text(self, doc):
        assert evaluate(doc, "number(/bib/book[1]/price)") == 65.95

    def test_nan_comparisons_false(self, doc):
        assert evaluate(doc, "number('zzz') < 1") is False
        assert evaluate(doc, "number('zzz') >= 1") is False

    def test_equality_mixed_types(self, doc):
        assert evaluate(doc, "'1' = 1") is True
        assert evaluate(doc, "true() = 1") is True
        assert evaluate(doc, "1 != 2") is True

    def test_unknown_function_rejected(self, doc):
        with pytest.raises(XPathEvaluationError, match="unknown function"):
            evaluate(doc, "frobnicate(1)")

    def test_evaluate_nodes_rejects_scalar(self, doc):
        with pytest.raises(XPathEvaluationError, match="node-set"):
            evaluate_nodes(doc, "1 + 1")


class TestConversionHelpers:
    def test_xpath_string(self):
        assert xpath_string(True) == "true"
        assert xpath_string(False) == "false"
        assert xpath_string(3.0) == "3"
        assert xpath_string(3.5) == "3.5"
        assert xpath_string([]) == ""

    def test_xpath_number(self):
        assert xpath_number("  42 ") == 42.0
        assert math.isnan(xpath_number("abc"))
        assert xpath_number(True) == 1.0

    def test_xpath_boolean(self):
        assert xpath_boolean(math.nan) is False
        assert xpath_boolean(0.0) is False
        assert xpath_boolean("") is False
        assert xpath_boolean("0") is True  # non-empty string is true

    def test_format_number(self):
        assert format_number(math.nan) == "NaN"
        assert format_number(math.inf) == "Infinity"
        assert format_number(-math.inf) == "-Infinity"
        assert format_number(2.0) == "2"


class TestAdditionalStringFunctions:
    def test_substring_before_after(self, doc):
        assert evaluate(doc, "substring-before('1999/04/01', '/')") == "1999"
        assert evaluate(doc, "substring-after('1999/04/01', '/')") == "04/01"
        assert evaluate(doc, "substring-before('abc', 'z')") == ""
        assert evaluate(doc, "substring-after('abc', 'z')") == ""

    def test_translate(self, doc):
        assert evaluate(doc, "translate('bar', 'abc', 'ABC')") == "BAr"
        # Characters without a replacement are removed.
        assert evaluate(doc, "translate('--aaa--', 'abc-', 'ABC')") == "AAA"
        # First occurrence in the source map wins.
        assert evaluate(doc, "translate('aa', 'aa', 'xy')") == "xx"

    def test_translate_on_nodes(self, doc):
        result = evaluate(
            doc, "translate(/bib/book[1]/title, '/', '-')"
        )
        assert result == "TCP-IP Illustrated"
