"""Observability layer: spans, statement events, metrics, exporters,
query introspection, and the bounded-overhead guarantee."""

import json
import tempfile
import threading
import time

import pytest

from repro import Tracer, XmlRelStore
from repro.bench import report as bench_report
from repro.bench.harness import ExperimentResult
from repro.obs import (
    NULL_TRACER,
    Explanation,
    MetricsRegistry,
    QueryReport,
    RequestLog,
    WindowRing,
    format_span_tree,
    load_snapshot,
    to_chrome_trace,
    to_jsonl,
)
from repro.relational.database import Database
from repro.relational.retry import RetryPolicy
from repro.reliability.faults import FaultInjectingDatabase

from .conftest import BIB_XML


def traced_session(**tracer_kwargs):
    """One stored document + one query under a fresh tracer."""
    tracer = Tracer(**tracer_kwargs)
    with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
        doc_id = store.store_text(BIB_XML, "bib")
        pres = store.query_pres(doc_id, "/bib/book/title")
    assert len(pres) == 2
    return tracer


class TestSpans:
    def test_store_and_query_nest_at_least_three_levels(self):
        tracer = traced_session()
        assert tracer.max_depth() >= 3
        # The pipeline phases are all present...
        names = {span.name for span in tracer.finished}
        assert {"parse", "store", "shred", "insert", "analyze",
                "query", "translate", "execute",
                "sql.statement"} <= names
        # ...and SQL statements nest under the insert and execute phases.
        insert = tracer.spans_named("insert")[0]
        assert any(c.name == "sql.statement" for c in insert.children)
        execute = tracer.spans_named("execute")[0]
        assert any(c.name == "sql.statement" for c in execute.children)

    def test_timings_are_monotonic_and_contained(self):
        tracer = traced_session()
        for root in tracer.roots:
            for span in root.walk():
                assert span.finished
                assert span.duration >= 0.0
                previous_start = span.start
                for child in span.children:
                    # Children run inside the parent's interval, in
                    # start order.
                    assert child.start >= span.start
                    assert child.end <= span.end + 1e-9
                    assert child.start >= previous_start
                    previous_start = child.start
                    assert child.depth == span.depth + 1

    def test_statement_spans_carry_sql_rows_and_duration(self):
        tracer = traced_session()
        statements = tracer.spans_named("sql.statement")
        assert statements
        for span in statements:
            assert span.attributes["sql"]
            assert span.attributes["params"] >= 0
            assert span.attributes["retries"] == 0
        select = [
            s for s in statements
            if s.attributes["sql"].startswith("SELECT DISTINCT")
        ]
        assert select and select[-1].attributes["rows"] == 2

    def test_query_span_reports_scheme_xpath_and_rows(self):
        tracer = traced_session()
        query = tracer.spans_named("query")[0]
        assert query.attributes["scheme"] == "interval"
        assert query.attributes["xpath"] == "/bib/book/title"
        assert query.attributes["rows"] == 2

    def test_span_tree_renders_every_phase(self):
        tracer = traced_session()
        tree = format_span_tree(tracer)
        for name in ("store", "insert", "query", "sql.statement"):
            assert name in tree
        assert "ms" in tree


class TestDisabledTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = traced_session(enabled=False)
        assert tracer.finished == []
        assert tracer.roots == []
        assert tracer.events == []
        assert tracer.metrics.is_empty()

    def test_default_store_uses_shared_null_tracer(self):
        with XmlRelStore.open(scheme="edge") as store:
            assert store.tracer is NULL_TRACER
            doc_id = store.store_text(BIB_XML)
            store.query_pres(doc_id, "//title")
        assert NULL_TRACER.finished == []
        assert NULL_TRACER.metrics.is_empty()


class TestStatementRetries:
    def policy(self):
        return RetryPolicy(
            max_attempts=5, base_delay=0.001, sleep=lambda _d: None,
            seed=3,
        )

    def test_busy_burst_counts_retries_on_the_statement_span(self):
        tracer = Tracer()
        db = FaultInjectingDatabase(retry=self.policy(), tracer=tracer)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(3)
        db.execute("INSERT INTO t VALUES (1)")
        span = tracer.spans_named("sql.statement")[-1]
        assert span.attributes["retries"] == 3
        assert tracer.metrics.counter_value("db.retries") == 3
        assert tracer.metrics.counter_value("db.transient_errors") == 3
        assert tracer.metrics.counter_value("faults.injected") == 3
        assert tracer.metrics.counter_value("faults.busy") == 3

    def test_exhausted_retries_mark_the_span_as_errored(self):
        tracer = Tracer()
        db = FaultInjectingDatabase(retry=self.policy(), tracer=tracer)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(99)
        with pytest.raises(Exception):
            db.execute("INSERT INTO t VALUES (1)")
        span = tracer.spans_named("sql.statement")[-1]
        assert span.attributes["retries"] == 4  # max_attempts - 1
        assert "error" in span.attributes
        assert tracer.metrics.counter_value("db.errors") == 1

    def test_executemany_generator_retry_inserts_full_batch(self):
        # The satellite fix: a one-shot generator must be materialized
        # before the first attempt, so a mid-batch transient failure and
        # retry can never insert an empty or short batch.
        tracer = Tracer()
        db = FaultInjectingDatabase(retry=self.policy(), tracer=tracer)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(2)
        db.executemany(
            "INSERT INTO t VALUES (?)", ((i,) for i in range(50))
        )
        assert db.scalar("SELECT COUNT(*) FROM t") == 50
        span = [
            s for s in tracer.spans_named("sql.statement")
            if s.attributes.get("kind") == "executemany"
        ][-1]
        assert span.attributes["rows"] == 50
        assert span.attributes["retries"] == 2

    def test_executemany_without_retry_still_materializes(self):
        db = Database()
        db.execute("CREATE TABLE t (x)")
        rows = iter([(1,), (2,), (3,)])
        db.executemany("INSERT INTO t VALUES (?)", rows)
        assert db.scalar("SELECT COUNT(*) FROM t") == 3


class TestSlowQueryCapture:
    def test_threshold_zero_captures_a_plan_for_selects(self):
        tracer = Tracer(slow_query_threshold=0.0)
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text(BIB_XML)
            store.query_pres(doc_id, "//title")
        slow = [
            s for s in tracer.spans_named("sql.statement")
            if s.attributes.get("plan")
        ]
        assert slow, "no statement captured a plan at threshold 0"
        assert any(
            "accel" in line for span in slow
            for line in span.attributes["plan"]
        )
        assert tracer.metrics.counter_value("db.slow_statements") > 0

    def test_high_threshold_captures_nothing(self):
        tracer = Tracer(slow_query_threshold=60.0)
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text(BIB_XML)
            store.query_pres(doc_id, "//title")
        assert all(
            "plan" not in s.attributes
            for s in tracer.spans_named("sql.statement")
        )
        assert tracer.metrics.counter_value("db.slow_statements") == 0


class TestMetrics:
    def test_session_metrics_have_nonzero_core_counters(self):
        tracer = traced_session()
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"]["db.statements"] > 0
        assert snapshot["counters"]["store.documents"] == 1
        assert snapshot["counters"]["store.nodes_shredded"] > 0
        assert snapshot["counters"]["db.rows_written"] > 0
        assert snapshot["counters"]["db.transactions"] >= 1
        assert snapshot["counters"]["query.executed"] == 1
        latency = snapshot["histograms"]["db.statement_seconds"]
        assert latency["count"] == snapshot["counters"]["db.statements"]
        assert latency["p50"] is not None
        assert latency["min"] <= latency["p50"] <= latency["max"]

    def test_snapshot_round_trips_through_json(self):
        tracer = traced_session()
        registry = tracer.metrics
        registry.gauge("custom.depth").set(3)
        registry.gauge("custom.depth").set(2)
        assert registry.gauge("custom.depth").high_water == 3
        restored = load_snapshot(registry.snapshot_json())
        assert restored == registry.snapshot()

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50, abs=1)
        assert histogram.percentile(99) == pytest.approx(99, abs=1)
        assert histogram.summary()["count"] == 100


class TestExporters:
    def test_jsonl_lines_parse_and_cover_every_span(self):
        tracer = traced_session()
        lines = to_jsonl(tracer).splitlines()
        records = [json.loads(line) for line in lines]
        spans = [r for r in records if r["type"] == "span"]
        assert len(spans) == len(tracer.finished)
        for record in spans:
            assert record["duration"] >= 0.0
            assert record["start"] >= 0.0

    def test_chrome_trace_is_valid_and_ordered(self):
        tracer = traced_session()
        trace = to_chrome_trace(tracer)
        # Round-trip through JSON: the export must be serializable.
        trace = json.loads(json.dumps(trace))
        events = trace["traceEvents"]
        assert events
        assert all(e["ph"] in ("X", "i") for e in events)
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        complete = [e for e in events if e["ph"] == "X"]
        assert {"name", "ts", "dur", "pid", "tid"} <= set(complete[0])


class TestQueryIntrospection:
    def test_explain_returns_sql_and_plan(self):
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(BIB_XML)
            explanation = store.explain(doc_id, "/bib/book/title")
        assert isinstance(explanation, Explanation)
        assert explanation.sql.startswith("SELECT")
        assert explanation.plan
        assert explanation.uses_index("accel_name")
        assert "plan:" in explanation.format()

    def test_query_report_carries_cost_signals(self):
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(BIB_XML)
            report = store.query_report(doc_id, "/bib/book/title")
        assert isinstance(report, QueryReport)
        assert report.row_count == 2 and len(report.pres) == 2
        assert report.join_count == 2
        assert report.sql_length == len(report.sql) > 0
        assert report.translate_seconds >= 0.0
        assert report.execute_seconds >= 0.0
        assert report.plan
        assert "joins:" in report.format()

    def test_explain_works_on_every_schemaless_scheme(self):
        from .conftest import SCHEMALESS_SCHEMES

        for name in SCHEMALESS_SCHEMES:
            with XmlRelStore.open(scheme=name) as store:
                doc_id = store.store_text(BIB_XML)
                explanation = store.explain(doc_id, "/bib/book")
                assert explanation.scheme == name
                assert explanation.plan, name


class TestBenchReportEmit:
    def result(self):
        result = ExperimentResult(
            experiment="E0", title="t", workload="w", expectation="e"
        )
        result.add_row("edge", seconds=1.5)
        return result

    def test_sink_receives_report_record(self, tmp_path, capsys):
        captured = []
        sink = bench_report.add_sink(captured.append)
        try:
            path = bench_report.write_report(
                self.result(), directory=str(tmp_path)
            )
        finally:
            bench_report.remove_sink(sink)
        assert captured and captured[0]["kind"] == "experiment-report"
        assert captured[0]["experiment"] == "E0"
        assert captured[0]["path"] == path
        json.dumps({k: v for k, v in captured[0].items()})
        # stdout rendering is preserved.
        assert "E0: t" in capsys.readouterr().out

    def test_stdout_can_be_muted_without_losing_sinks(
        self, tmp_path, capsys
    ):
        captured = []
        sink = bench_report.add_sink(captured.append)
        bench_report.set_stdout(False)
        try:
            bench_report.write_report(
                self.result(), directory=str(tmp_path)
            )
        finally:
            bench_report.set_stdout(True)
            bench_report.remove_sink(sink)
        assert captured
        assert capsys.readouterr().out == ""


class TestOverheadGuard:
    def _session_seconds(self, tracer):
        started = time.perf_counter()
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text(BIB_XML, "bib")
            for _ in range(20):
                store.query_pres(doc_id, "/bib/book/title")
        return time.perf_counter() - started

    def test_traced_run_stays_within_overhead_factor(self):
        # The CI guard: tracing every span and statement must stay
        # within a fixed factor of the untraced run.  Best-of-3 on both
        # sides smooths scheduler noise; the factor is deliberately
        # generous — the budget in DESIGN.md is ~10%, the guard trips on
        # an order-of-magnitude regression, not jitter.
        untraced = min(
            self._session_seconds(None) for _ in range(3)
        )
        traced = min(
            self._session_seconds(Tracer()) for _ in range(3)
        )
        assert traced <= untraced * 3.0 + 0.05, (
            f"tracing overhead too high: traced={traced:.4f}s "
            f"untraced={untraced:.4f}s"
        )


class TestWindowedMetrics:
    """Sliding-window aggregation (satellite of the telemetry plane)."""

    def test_window_ring_counts_rates_and_percentiles(self):
        clock = [1000.0]
        ring = WindowRing(clock=lambda: clock[0])
        for _ in range(95):
            ring.observe(0.010)
        for _ in range(5):
            ring.observe(0.500)  # a 5% slow tail
        summary = ring.summary(60.0)
        assert summary["count"] == 100
        assert summary["qps"] == pytest.approx(100 / 60.0)
        assert summary["min"] == 0.010
        assert summary["max"] == 0.500
        # Log-binned estimates: bounded relative error (~9% per octave
        # sub-bin), so p50 lands near 10ms and p99 in the slow tail.
        assert 0.009 <= summary["p50"] <= 0.012
        assert 0.4 <= summary["p99"] <= 0.500

    def test_window_ring_forgets_old_buckets(self):
        clock = [1000.0]
        ring = WindowRing(clock=lambda: clock[0])
        ring.observe(1.0)
        clock[0] += 30.0
        ring.observe(2.0)
        assert ring.count(60.0) == 2
        clock[0] += 45.0  # first value now 75s old, second 45s old
        assert ring.count(60.0) == 1
        assert ring.summary(60.0)["max"] == 2.0
        clock[0] += 120.0  # everything aged out
        assert ring.count(60.0) == 0
        assert ring.summary(60.0)["p99"] is None

    def test_counter_rate_and_histogram_window(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        histogram = registry.histogram("latency")
        for _ in range(10):
            counter.inc()
            histogram.observe(0.005)
        assert counter.window_count(60.0) == 10
        assert counter.rate(60.0) == pytest.approx(10 / 60.0)
        window = histogram.window(60.0)
        assert window["count"] == 10
        assert window["p99"] is not None
        # Lifetime summaries are untouched by the windowed view.
        assert histogram.summary()["count"] == 10

    def test_windows_snapshot_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("serve.queries").inc(3)
        registry.counter("db.statements").inc(5)
        registry.histogram("serve.query_seconds").observe(0.01)
        snap = registry.windows_snapshot(60.0, prefix="serve.")
        assert set(snap["counters"]) == {"serve.queries"}
        assert set(snap["histograms"]) == {"serve.query_seconds"}
        assert snap["counters"]["serve.queries"]["count"] == 3


class TestSnapshotUnderConcurrency:
    """snapshot(prefix)/load_snapshot round-trip with writer threads."""

    def test_prefix_snapshot_round_trips_while_writers_hammer(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer(worker: int):
            while not stop.is_set():
                registry.counter(f"serve.w{worker}.ops").inc()
                registry.histogram("serve.latency").observe(0.001)
                registry.counter("other.noise").inc()

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            # Snapshots taken mid-hammer must stay internally
            # consistent and JSON-round-trippable.
            for _ in range(20):
                snap = registry.snapshot(prefix="serve.")
                assert all(
                    name.startswith("serve.") for name in snap["counters"]
                )
                assert all(
                    name.startswith("serve.")
                    for name in snap["histograms"]
                )
                restored = load_snapshot(json.dumps(snap))
                assert restored == snap
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        # Quiesced: full snapshot equals its JSON round trip exactly.
        restored = load_snapshot(registry.snapshot_json())
        assert restored == registry.snapshot()


class TestCrossThreadSpans:
    def test_unadopted_worker_root_is_tagged_detached(self):
        tracer = Tracer()

        def worker():
            with tracer.span("orphan"):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert tracer.roots[0].attributes.get("detached") is True
        # ...and the tag survives into every export.
        exported = json.loads(to_jsonl(tracer).splitlines()[0])
        assert exported["attributes"]["detached"] is True

    def test_home_thread_root_is_not_tagged(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert "detached" not in tracer.roots[0].attributes

    def test_adopted_worker_spans_join_the_request_tree(self):
        tracer = Tracer()
        with tracer.span("request") as root:
            context = tracer.capture()
            assert context.span is root
            assert context.request_id.startswith("req-")

            def worker(n):
                with tracer.adopt(context):
                    with tracer.span("work", n=n):
                        pass

            threads = [
                threading.Thread(target=worker, args=(n,))
                for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(tracer.roots) == 1
        children = tracer.roots[0].children
        assert sorted(c.attributes["n"] for c in children) == [0, 1, 2, 3]
        assert all(c.parent_id == tracer.roots[0].span_id for c in children)
        assert all(c.depth == 1 for c in children)
        assert not any(
            "detached" in span.attributes
            for span in tracer.roots[0].walk()
        )

    def test_adoption_never_closes_the_borrowed_span(self):
        tracer = Tracer()
        with tracer.span("request"):
            context = tracer.capture()

            def rogue():
                with tracer.adopt(context):
                    # A worker double-ending must not close the
                    # borrowed request root out from under its owner.
                    tracer.end_span(context.span)

            thread = threading.Thread(target=rogue)
            thread.start()
            thread.join()
            assert tracer.current_span is context.span
        assert len(tracer.roots) == 1
        assert tracer.roots[0].finished

    def test_disabled_tracer_adoption_is_a_noop(self):
        context = NULL_TRACER.capture()
        assert context.span is None
        with NULL_TRACER.adopt(context) as span:
            assert span is None


class TestFullTelemetryOverheadGuard:
    """Satellite: tracing + windows + event log within a fixed budget
    vs NULL_TRACER on the warm-query path."""

    def _warm_queries_seconds(self, tracer, request_log):
        from repro.serve import ShardedStore

        with tempfile.TemporaryDirectory() as tmp:
            with ShardedStore.open(
                tmp + "/store",
                scheme="interval",
                shards=2,
                placement="round_robin",
                tracer=tracer,
                request_log=request_log,
            ) as store:
                doc_id = store.store_text(BIB_XML, "bib")
                store.query_pres(doc_id, "/bib/book/title")  # warm plans
                started = time.perf_counter()
                for _ in range(100):
                    store.query_pres(doc_id, "/bib/book/title")
                return time.perf_counter() - started

    def test_full_telemetry_stays_within_overhead_budget(self):
        # Same shape as TestOverheadGuard, with the full plane on: span
        # tree + windowed metrics + wide-event log.  The strict <= 5%
        # acceptance lives in benchmarks/bench_e18_telemetry.py; this
        # guard trips on order-of-magnitude regressions, not jitter.
        baseline = min(
            self._warm_queries_seconds(None, None) for _ in range(3)
        )
        with tempfile.TemporaryDirectory() as tmp:
            telemetry = min(
                self._warm_queries_seconds(
                    Tracer(), RequestLog(path=tmp + "/events.jsonl")
                )
                for _ in range(3)
            )
        assert telemetry <= baseline * 3.0 + 0.05, (
            f"telemetry overhead too high: on={telemetry:.4f}s "
            f"off={baseline:.4f}s"
        )
