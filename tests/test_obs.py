"""Observability layer: spans, statement events, metrics, exporters,
query introspection, and the bounded-overhead guarantee."""

import json
import time

import pytest

from repro import Tracer, XmlRelStore
from repro.bench import report as bench_report
from repro.bench.harness import ExperimentResult
from repro.obs import (
    NULL_TRACER,
    Explanation,
    MetricsRegistry,
    QueryReport,
    format_span_tree,
    load_snapshot,
    to_chrome_trace,
    to_jsonl,
)
from repro.relational.database import Database
from repro.relational.retry import RetryPolicy
from repro.reliability.faults import FaultInjectingDatabase

from .conftest import BIB_XML


def traced_session(**tracer_kwargs):
    """One stored document + one query under a fresh tracer."""
    tracer = Tracer(**tracer_kwargs)
    with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
        doc_id = store.store_text(BIB_XML, "bib")
        pres = store.query_pres(doc_id, "/bib/book/title")
    assert len(pres) == 2
    return tracer


class TestSpans:
    def test_store_and_query_nest_at_least_three_levels(self):
        tracer = traced_session()
        assert tracer.max_depth() >= 3
        # The pipeline phases are all present...
        names = {span.name for span in tracer.finished}
        assert {"parse", "store", "shred", "insert", "analyze",
                "query", "translate", "execute",
                "sql.statement"} <= names
        # ...and SQL statements nest under the insert and execute phases.
        insert = tracer.spans_named("insert")[0]
        assert any(c.name == "sql.statement" for c in insert.children)
        execute = tracer.spans_named("execute")[0]
        assert any(c.name == "sql.statement" for c in execute.children)

    def test_timings_are_monotonic_and_contained(self):
        tracer = traced_session()
        for root in tracer.roots:
            for span in root.walk():
                assert span.finished
                assert span.duration >= 0.0
                previous_start = span.start
                for child in span.children:
                    # Children run inside the parent's interval, in
                    # start order.
                    assert child.start >= span.start
                    assert child.end <= span.end + 1e-9
                    assert child.start >= previous_start
                    previous_start = child.start
                    assert child.depth == span.depth + 1

    def test_statement_spans_carry_sql_rows_and_duration(self):
        tracer = traced_session()
        statements = tracer.spans_named("sql.statement")
        assert statements
        for span in statements:
            assert span.attributes["sql"]
            assert span.attributes["params"] >= 0
            assert span.attributes["retries"] == 0
        select = [
            s for s in statements
            if s.attributes["sql"].startswith("SELECT DISTINCT")
        ]
        assert select and select[-1].attributes["rows"] == 2

    def test_query_span_reports_scheme_xpath_and_rows(self):
        tracer = traced_session()
        query = tracer.spans_named("query")[0]
        assert query.attributes["scheme"] == "interval"
        assert query.attributes["xpath"] == "/bib/book/title"
        assert query.attributes["rows"] == 2

    def test_span_tree_renders_every_phase(self):
        tracer = traced_session()
        tree = format_span_tree(tracer)
        for name in ("store", "insert", "query", "sql.statement"):
            assert name in tree
        assert "ms" in tree


class TestDisabledTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = traced_session(enabled=False)
        assert tracer.finished == []
        assert tracer.roots == []
        assert tracer.events == []
        assert tracer.metrics.is_empty()

    def test_default_store_uses_shared_null_tracer(self):
        with XmlRelStore.open(scheme="edge") as store:
            assert store.tracer is NULL_TRACER
            doc_id = store.store_text(BIB_XML)
            store.query_pres(doc_id, "//title")
        assert NULL_TRACER.finished == []
        assert NULL_TRACER.metrics.is_empty()


class TestStatementRetries:
    def policy(self):
        return RetryPolicy(
            max_attempts=5, base_delay=0.001, sleep=lambda _d: None,
            seed=3,
        )

    def test_busy_burst_counts_retries_on_the_statement_span(self):
        tracer = Tracer()
        db = FaultInjectingDatabase(retry=self.policy(), tracer=tracer)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(3)
        db.execute("INSERT INTO t VALUES (1)")
        span = tracer.spans_named("sql.statement")[-1]
        assert span.attributes["retries"] == 3
        assert tracer.metrics.counter_value("db.retries") == 3
        assert tracer.metrics.counter_value("db.transient_errors") == 3
        assert tracer.metrics.counter_value("faults.injected") == 3
        assert tracer.metrics.counter_value("faults.busy") == 3

    def test_exhausted_retries_mark_the_span_as_errored(self):
        tracer = Tracer()
        db = FaultInjectingDatabase(retry=self.policy(), tracer=tracer)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(99)
        with pytest.raises(Exception):
            db.execute("INSERT INTO t VALUES (1)")
        span = tracer.spans_named("sql.statement")[-1]
        assert span.attributes["retries"] == 4  # max_attempts - 1
        assert "error" in span.attributes
        assert tracer.metrics.counter_value("db.errors") == 1

    def test_executemany_generator_retry_inserts_full_batch(self):
        # The satellite fix: a one-shot generator must be materialized
        # before the first attempt, so a mid-batch transient failure and
        # retry can never insert an empty or short batch.
        tracer = Tracer()
        db = FaultInjectingDatabase(retry=self.policy(), tracer=tracer)
        db.execute("CREATE TABLE t (x)")
        db.busy_next(2)
        db.executemany(
            "INSERT INTO t VALUES (?)", ((i,) for i in range(50))
        )
        assert db.scalar("SELECT COUNT(*) FROM t") == 50
        span = [
            s for s in tracer.spans_named("sql.statement")
            if s.attributes.get("kind") == "executemany"
        ][-1]
        assert span.attributes["rows"] == 50
        assert span.attributes["retries"] == 2

    def test_executemany_without_retry_still_materializes(self):
        db = Database()
        db.execute("CREATE TABLE t (x)")
        rows = iter([(1,), (2,), (3,)])
        db.executemany("INSERT INTO t VALUES (?)", rows)
        assert db.scalar("SELECT COUNT(*) FROM t") == 3


class TestSlowQueryCapture:
    def test_threshold_zero_captures_a_plan_for_selects(self):
        tracer = Tracer(slow_query_threshold=0.0)
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text(BIB_XML)
            store.query_pres(doc_id, "//title")
        slow = [
            s for s in tracer.spans_named("sql.statement")
            if s.attributes.get("plan")
        ]
        assert slow, "no statement captured a plan at threshold 0"
        assert any(
            "accel" in line for span in slow
            for line in span.attributes["plan"]
        )
        assert tracer.metrics.counter_value("db.slow_statements") > 0

    def test_high_threshold_captures_nothing(self):
        tracer = Tracer(slow_query_threshold=60.0)
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text(BIB_XML)
            store.query_pres(doc_id, "//title")
        assert all(
            "plan" not in s.attributes
            for s in tracer.spans_named("sql.statement")
        )
        assert tracer.metrics.counter_value("db.slow_statements") == 0


class TestMetrics:
    def test_session_metrics_have_nonzero_core_counters(self):
        tracer = traced_session()
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"]["db.statements"] > 0
        assert snapshot["counters"]["store.documents"] == 1
        assert snapshot["counters"]["store.nodes_shredded"] > 0
        assert snapshot["counters"]["db.rows_written"] > 0
        assert snapshot["counters"]["db.transactions"] >= 1
        assert snapshot["counters"]["query.executed"] == 1
        latency = snapshot["histograms"]["db.statement_seconds"]
        assert latency["count"] == snapshot["counters"]["db.statements"]
        assert latency["p50"] is not None
        assert latency["min"] <= latency["p50"] <= latency["max"]

    def test_snapshot_round_trips_through_json(self):
        tracer = traced_session()
        registry = tracer.metrics
        registry.gauge("custom.depth").set(3)
        registry.gauge("custom.depth").set(2)
        assert registry.gauge("custom.depth").high_water == 3
        restored = load_snapshot(registry.snapshot_json())
        assert restored == registry.snapshot()

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50, abs=1)
        assert histogram.percentile(99) == pytest.approx(99, abs=1)
        assert histogram.summary()["count"] == 100


class TestExporters:
    def test_jsonl_lines_parse_and_cover_every_span(self):
        tracer = traced_session()
        lines = to_jsonl(tracer).splitlines()
        records = [json.loads(line) for line in lines]
        spans = [r for r in records if r["type"] == "span"]
        assert len(spans) == len(tracer.finished)
        for record in spans:
            assert record["duration"] >= 0.0
            assert record["start"] >= 0.0

    def test_chrome_trace_is_valid_and_ordered(self):
        tracer = traced_session()
        trace = to_chrome_trace(tracer)
        # Round-trip through JSON: the export must be serializable.
        trace = json.loads(json.dumps(trace))
        events = trace["traceEvents"]
        assert events
        assert all(e["ph"] in ("X", "i") for e in events)
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        complete = [e for e in events if e["ph"] == "X"]
        assert {"name", "ts", "dur", "pid", "tid"} <= set(complete[0])


class TestQueryIntrospection:
    def test_explain_returns_sql_and_plan(self):
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(BIB_XML)
            explanation = store.explain(doc_id, "/bib/book/title")
        assert isinstance(explanation, Explanation)
        assert explanation.sql.startswith("SELECT")
        assert explanation.plan
        assert explanation.uses_index("accel_name")
        assert "plan:" in explanation.format()

    def test_query_report_carries_cost_signals(self):
        with XmlRelStore.open(scheme="interval") as store:
            doc_id = store.store_text(BIB_XML)
            report = store.query_report(doc_id, "/bib/book/title")
        assert isinstance(report, QueryReport)
        assert report.row_count == 2 and len(report.pres) == 2
        assert report.join_count == 2
        assert report.sql_length == len(report.sql) > 0
        assert report.translate_seconds >= 0.0
        assert report.execute_seconds >= 0.0
        assert report.plan
        assert "joins:" in report.format()

    def test_explain_works_on_every_schemaless_scheme(self):
        from .conftest import SCHEMALESS_SCHEMES

        for name in SCHEMALESS_SCHEMES:
            with XmlRelStore.open(scheme=name) as store:
                doc_id = store.store_text(BIB_XML)
                explanation = store.explain(doc_id, "/bib/book")
                assert explanation.scheme == name
                assert explanation.plan, name


class TestBenchReportEmit:
    def result(self):
        result = ExperimentResult(
            experiment="E0", title="t", workload="w", expectation="e"
        )
        result.add_row("edge", seconds=1.5)
        return result

    def test_sink_receives_report_record(self, tmp_path, capsys):
        captured = []
        sink = bench_report.add_sink(captured.append)
        try:
            path = bench_report.write_report(
                self.result(), directory=str(tmp_path)
            )
        finally:
            bench_report.remove_sink(sink)
        assert captured and captured[0]["kind"] == "experiment-report"
        assert captured[0]["experiment"] == "E0"
        assert captured[0]["path"] == path
        json.dumps({k: v for k, v in captured[0].items()})
        # stdout rendering is preserved.
        assert "E0: t" in capsys.readouterr().out

    def test_stdout_can_be_muted_without_losing_sinks(
        self, tmp_path, capsys
    ):
        captured = []
        sink = bench_report.add_sink(captured.append)
        bench_report.set_stdout(False)
        try:
            bench_report.write_report(
                self.result(), directory=str(tmp_path)
            )
        finally:
            bench_report.set_stdout(True)
            bench_report.remove_sink(sink)
        assert captured
        assert capsys.readouterr().out == ""


class TestOverheadGuard:
    def _session_seconds(self, tracer):
        started = time.perf_counter()
        with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
            doc_id = store.store_text(BIB_XML, "bib")
            for _ in range(20):
                store.query_pres(doc_id, "/bib/book/title")
        return time.perf_counter() - started

    def test_traced_run_stays_within_overhead_factor(self):
        # The CI guard: tracing every span and statement must stay
        # within a fixed factor of the untraced run.  Best-of-3 on both
        # sides smooths scheduler noise; the factor is deliberately
        # generous — the budget in DESIGN.md is ~10%, the guard trips on
        # an order-of-magnitude regression, not jitter.
        untraced = min(
            self._session_seconds(None) for _ in range(3)
        )
        traced = min(
            self._session_seconds(Tracer()) for _ in range(3)
        )
        assert traced <= untraced * 3.0 + 0.05, (
            f"tracing overhead too high: traced={traced:.4f}s "
            f"untraced={untraced:.4f}s"
        )
