"""Writable shards: serialized updates, rebalancing, recovery, replicas."""

import threading

import pytest

from repro.errors import StorageError, UpdateError
from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database
from repro.relational.retry import RetryPolicy
from repro.reliability.faults import ShardFaultPolicy, SimulatedCrash
from repro.serve import ConnectionPool, ShardedStore, replica_fault_key
from repro.xml import parse_fragment

SMALL_XML = "<bib><book><title>one</title></book><book><title>two</title></book></bib>"
FRAGMENT = "<book><title>fresh</title></book>"


def open_store(directory, **kwargs):
    kwargs.setdefault("scheme", "interval")
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("placement", "round_robin")
    kwargs.setdefault("profile", "bulk_load")
    kwargs.setdefault("pool_size", 2)
    return ShardedStore.open(str(directory), **kwargs)


# -- serialized online updates ---------------------------------------------------


class TestWritableShards:
    def test_subtree_insert_and_delete_roundtrip(self, tmp_path):
        with open_store(tmp_path) as store:
            doc = store.store_text(SMALL_XML, name="a")
            root = store.query_pres(doc, "/bib")[0]
            stats = store.insert_subtree(
                doc, root, parse_fragment(FRAGMENT), index=0
            )
            assert stats.rows_inserted > 0
            assert len(store.query_pres(doc, "/bib/book")) == 3
            assert "fresh" in store.reconstruct_xml(doc)
            victim = store.query_pres(doc, "/bib/book")[0]
            store.delete_subtree(doc, victim)
            assert len(store.query_pres(doc, "/bib/book")) == 2
            assert "fresh" not in store.reconstruct_xml(doc)
            assert store.verify(doc).ok

    def test_updates_on_unsupporting_scheme_raise(self, tmp_path):
        with open_store(tmp_path, scheme="xrel") as store:
            doc = store.store_text(SMALL_XML, name="a")
            assert not store.supports_updates
            with pytest.raises(UpdateError, match="does not implement"):
                store.insert_subtree(
                    doc, 1, parse_fragment(FRAGMENT), index=0
                )

    def test_concurrent_updates_serialize_per_shard(self, tmp_path):
        """Many threads inserting into one document: the shard's
        single-writer lock serializes them, none is lost, and readers
        interleave freely."""
        threads = 6
        per_thread = 3
        with open_store(tmp_path) as store:
            doc = store.store_text(SMALL_XML, name="a")
            root = store.query_pres(doc, "/bib")[0]
            barrier = threading.Barrier(threads)
            errors = []

            def writer(index):
                try:
                    barrier.wait()
                    for _ in range(per_thread):
                        store.insert_subtree(
                            doc, root, parse_fragment(FRAGMENT), index=0
                        )
                        store.query_pres(doc, "/bib/book/title")
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            pool = [
                threading.Thread(target=writer, args=(i,))
                for i in range(threads)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            assert not errors
            books = store.query_pres(doc, "/bib/book")
            assert len(books) == 2 + threads * per_thread
            assert store.verify(doc).ok
            assert (
                store.metrics.counter_value("serve.subtree_inserts")
                == threads * per_thread
            )


# -- shard-local plan epochs -----------------------------------------------------


class TestShardLocalPlanEpochs:
    def test_write_bumps_only_owning_shards_epoch(self, tmp_path):
        """A write on shard A must not invalidate plans cached for
        shard B (binary's translations depend on stored data, so its
        writes do bump the owning shard's epoch)."""
        with open_store(tmp_path, scheme="binary") as store:
            doc_a = store.store_text(SMALL_XML, name="a")  # shard 0
            doc_b = store.store_text(SMALL_XML, name="b")  # shard 1
            epoch_b = store.pools[1].epoch
            root = store.query_pres(doc_a, "/bib")[0]
            store.insert_subtree(
                doc_a, root, parse_fragment(FRAGMENT), index=0
            )
            assert store.pools[0].epoch > 0
            assert store.pools[1].epoch == epoch_b
            assert doc_b  # placement really was round-robin

    def test_partial_mode_keeps_other_shards_plans_warm(self, tmp_path):
        """Partial-results degraded mode x shard-local epochs: kill
        shard 0 after a write to it; shard 1 keeps answering scatter
        queries from its still-valid plan cache."""
        policy = ShardFaultPolicy()
        with open_store(
            tmp_path,
            scheme="binary",
            fault_policy=policy,
            on_shard_error="partial",
        ) as store:
            doc_a = store.store_text(SMALL_XML, name="a")  # shard 0
            doc_b = store.store_text(SMALL_XML, name="b")  # shard 1
            # Warm shard 1's plan cache.
            store.query_pres(doc_b, "/bib/book/title")
            store.query_pres(doc_b, "/bib/book/title")
            warm = store.pools[1].plan_cache.stats()
            assert warm["hits"] >= 1
            # Write on shard 0 (bumps only shard 0's epoch) then take
            # shard 0 down entirely.
            root = store.query_pres(doc_a, "/bib")[0]
            store.insert_subtree(
                doc_a, root, parse_fragment(FRAGMENT), index=0
            )
            policy.fail_shard(0)
            result = store.query_all("/bib/book/title")
            assert result.partial
            assert [shard for shard, _ in result.failed_shards] == [0]
            assert {doc for doc, _ in result.rows} == {doc_b}
            after = store.pools[1].plan_cache.stats()
            assert after["hits"] > warm["hits"]
            assert after["misses"] == warm["misses"]


# -- online rebalancing ----------------------------------------------------------


class TestRebalance:
    def test_rebalance_moves_document_and_preserves_content(self, tmp_path):
        with open_store(tmp_path) as store:
            doc = store.store_text(SMALL_XML, name="a")  # shard 0
            before = store.reconstruct_xml(doc)
            moved = store.rebalance(doc, 1)
            assert moved.shard == 1
            assert store.resolve(doc).shard == 1
            assert store.reconstruct_xml(doc) == before
            assert store.shard_counts() == {0: 0, 1: 1}
            assert store.query_pres(doc, "/bib/book")  # still readable
            assert store.verify_ok()
            # Source copy is gone, not orphaned.
            assert not store.writers[0].documents()
            # Idempotent when already home.
            assert store.rebalance(doc, 1).shard == 1

    def test_crash_mid_rebalance_rolls_back_and_audits_clean(self, tmp_path):
        policy = ShardFaultPolicy()
        with open_store(tmp_path, fault_policy=policy) as store:
            doc = store.store_text(SMALL_XML, name="a")
            before = store.reconstruct_xml(doc)
            policy.crash_shard(1, 3)  # mid-copy on the destination
            with pytest.raises(SimulatedCrash):
                store.rebalance(doc, 1)
            assert store.journal.pending()  # the move is journaled
            policy.heal_all()
            report = store.recover()
            assert report.acted
            assert not store.journal.pending()
            assert store.resolve(doc).shard == 0
            assert store.reconstruct_xml(doc) == before
            assert store.verify_ok()

    def test_crash_recovery_replays_from_disk_on_reopen(self, tmp_path):
        policy = ShardFaultPolicy()
        store = open_store(tmp_path, fault_policy=policy)
        doc = store.store_text(SMALL_XML, name="a")
        before = store.reconstruct_xml(doc)
        policy.crash_shard(1, 3)
        with pytest.raises(SimulatedCrash):
            store.rebalance(doc, 1)
        store.close()  # journal row survives on disk
        with open_store(tmp_path) as reopened:
            assert not reopened.journal.pending()
            assert reopened.reconstruct_xml(doc) == before
            assert reopened.verify_ok()

    def test_rebalance_shard_evens_counts(self, tmp_path):
        with open_store(tmp_path, shards=2) as store:
            for i in range(4):
                store.store_text(SMALL_XML, name=f"doc-{i}")
            # Round-robin already spread them 2/2; pile onto shard 0.
            for record in store.documents():
                if record.shard == 1:
                    store.rebalance(record.doc_id, 0)
            assert store.shard_counts() == {0: 4, 1: 0}
            moved = store.rebalance_shard(0, 1)
            assert len(moved) == 2
            assert store.shard_counts() == {0: 2, 1: 2}
            assert store.verify_ok()


# -- replica fan-out -------------------------------------------------------------


class TestReplicas:
    def test_ship_then_read_from_replica_with_staleness(self, tmp_path):
        with open_store(tmp_path, replicas=2) as store:
            doc = store.store_text(SMALL_XML, name="a")
            shard = store.resolve(doc).shard
            shipped = store.ship_replicas()
            assert shipped[shard] == [0, 1]
            report = store.query_report(doc, "/bib/book", read_from="replica")
            assert report.read_from == "replica"
            assert report.replica_lag_writes == 0
            assert report.replica_age_seconds is not None
            assert "read from: replica" in report.format()
            # A write the replicas have not seen widens the bound.
            root = store.query_pres(doc, "/bib")[0]
            store.insert_subtree(
                doc, root, parse_fragment(FRAGMENT), index=0
            )
            report = store.query_report(doc, "/bib/book", read_from="replica")
            assert report.replica_lag_writes == 1
            staleness = store.replica_staleness()[shard]
            assert staleness[0][0] == 1 and staleness[1][0] == 1
            # Replica answers are the shipped snapshot (2 books), the
            # primary has 3 — a bounded-staleness read, not a wrong one.
            assert len(store.query_pres(doc, "/bib/book", read_from="replica")) == 2
            assert len(store.query_pres(doc, "/bib/book")) == 3
            # Re-shipping closes the gap.
            store.ship_replicas(shard)
            assert store.replica_staleness()[shard][0][0] == 0
            assert len(store.query_pres(doc, "/bib/book", read_from="replica")) == 3

    def test_replica_reads_before_any_ship_fall_back(self, tmp_path):
        with open_store(tmp_path, replicas=1) as store:
            doc = store.store_text(SMALL_XML, name="a")
            report = store.query_report(doc, "/bib/book", read_from="replica")
            assert report.read_from == "primary"  # nothing shipped yet

    def test_crashed_replica_falls_back_to_primary(self, tmp_path):
        policy = ShardFaultPolicy()
        with open_store(
            tmp_path, replicas=1, fault_policy=policy
        ) as store:
            doc = store.store_text(SMALL_XML, name="a")
            shard = store.resolve(doc).shard
            store.ship_replicas()
            policy.fail_shard(replica_fault_key(shard, 0))
            pres = store.query_pres(doc, "/bib/book", read_from="replica")
            assert len(pres) == 2  # primary answered
            assert (
                store.metrics.counter_value("serve.replica_fallbacks") >= 1
            )

    def test_scatter_reports_replica_staleness_bound(self, tmp_path):
        with open_store(tmp_path, replicas=1, read_from="replica") as store:
            store.store_text(SMALL_XML, name="a")
            store.store_text(SMALL_XML, name="b")
            store.ship_replicas()
            result = store.query_all("/bib/book")
            assert result.replica_reads == 2
            assert result.max_replica_lag_writes == 0
            assert result.max_replica_age_seconds is not None


# -- integrity across shards -----------------------------------------------------


class TestShardedVerify:
    def test_verify_all_reports_per_shard(self, tmp_path):
        with open_store(tmp_path) as store:
            doc_a = store.store_text(SMALL_XML, name="a")
            doc_b = store.store_text(SMALL_XML, name="b")
            results = store.verify_all()
            assert set(results) == {0, 1}
            audited = {
                report.doc_id
                for reports in results.values()
                for report in reports
                if report.doc_id != -1
            }
            assert audited == {doc_a, doc_b}
            for shard, reports in results.items():
                for report in reports:
                    assert report.ok, report.summary()
                    assert report.shard == shard
            # Per-document verify carries global id + shard.
            report = store.verify(doc_b)
            assert report.doc_id == doc_b
            assert report.shard == store.resolve(doc_b).shard
            assert f"shard {report.shard}" in report.summary()

    def test_placement_audit_flags_orphans(self, tmp_path):
        with open_store(tmp_path) as store:
            store.store_text(SMALL_XML, name="a")
            # Sneak a document into shard 0 behind the map's back.
            store.writers[0].store_text(SMALL_XML, name="orphan")
            placement = store.verify_all()[0][-1]
            assert not placement.ok
            assert placement.failed("placement.no-orphans")
            # recover() sweeps it; the audit comes back clean.
            assert store.recover().orphans_removed
            assert store.verify_ok()


# -- pool health-check retry -----------------------------------------------------


class FlakySelectOneDatabase(Database):
    """Fails the pool health probe a configurable number of times."""

    failures_left = 0

    def _raw_execute(self, sql, params=()):
        if sql == "SELECT 1" and type(self).failures_left > 0:
            type(self).failures_left -= 1
            raise StorageError("health probe refused (injected)")
        return super()._raw_execute(sql, params)


class TestPoolHealthRetry:
    def _seed(self, path):
        with Database(str(path), profile="bulk_load") as db:
            from repro.core.registry import create_scheme

            create_scheme("interval", db)

    def test_fresh_failures_retry_with_backoff_then_succeed(self, tmp_path):
        path = tmp_path / "shard.db"
        self._seed(path)
        FlakySelectOneDatabase.failures_left = 2
        sleeps = []
        metrics = MetricsRegistry()
        pool = ConnectionPool(
            str(path),
            "interval",
            size=1,
            name="flaky",
            metrics=metrics,
            database_factory=FlakySelectOneDatabase,
            retry=RetryPolicy(
                max_attempts=4, base_delay=0.01, jitter=0.0,
                sleep=sleeps.append,
            ),
        )
        with pool.connection() as session:
            assert session.db.scalar("SELECT 1") == 1
        assert metrics.counter_value("pool.flaky.health_retries") == 2
        assert len(sleeps) == 2
        assert sleeps[0] < sleeps[1]  # exponential backoff
        pool.close()

    def test_exhausted_retries_report_shard_down(self, tmp_path):
        path = tmp_path / "shard.db"
        self._seed(path)
        FlakySelectOneDatabase.failures_left = 99
        pool = ConnectionPool(
            str(path),
            "interval",
            size=1,
            name="down",
            database_factory=FlakySelectOneDatabase,
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.0, jitter=0.0,
                sleep=lambda _: None,
            ),
        )
        with pytest.raises(StorageError, match="shard down"):
            pool.acquire()
        FlakySelectOneDatabase.failures_left = 0
        pool.close()


# -- crash_shard mirrors crash_on ------------------------------------------------


class TestCrashShard:
    def test_crash_on_nth_statement_then_refuse_until_heal(self):
        policy = ShardFaultPolicy()
        db = policy.factory(7)(":memory:", profile="bulk_load")
        db.execute("CREATE TABLE t (x INTEGER)")
        policy.crash_shard(7, 2)
        db.execute("INSERT INTO t VALUES (1)")  # statement 1: fine
        with pytest.raises(SimulatedCrash):
            db.execute("INSERT INTO t VALUES (2)")  # statement 2: crash
        with pytest.raises(StorageError, match="crashed"):
            db.execute("SELECT * FROM t")  # down until healed
        policy.heal_shard(7)
        assert db.scalar("SELECT COUNT(*) FROM t") == 1
        db.close()

    def test_crash_inside_transaction_rolls_back(self):
        policy = ShardFaultPolicy()
        db = policy.factory(3)(":memory:", profile="bulk_load")
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        policy.crash_shard(3, 2)
        with pytest.raises(SimulatedCrash):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (2)")
                db.execute("INSERT INTO t VALUES (3)")
        policy.heal_shard(3)
        assert db.scalar("SELECT COUNT(*) FROM t") == 1
        db.close()
