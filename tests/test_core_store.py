"""Tests for the XmlRelStore facade and the multi-scheme comparator."""

import pytest

from repro.core.compare import compare_schemes
from repro.core.registry import available_schemes, create_scheme, scheme_class
from repro.core.store import XmlRelStore, open_store
from repro.errors import DocumentNotFoundError, XmlRelError
from repro.relational.database import Database
from repro.xml import parse_document
from repro.xml.dom import deep_equal

from tests.conftest import BIB_XML


class TestRegistry:
    def test_all_schemes_registered(self):
        assert set(available_schemes()) == {
            "edge", "binary", "universal", "interval", "dewey", "xrel",
            "inlining",
        }

    def test_unknown_scheme_rejected(self):
        with pytest.raises(XmlRelError, match="unknown scheme"):
            scheme_class("btree")

    def test_create_scheme(self):
        with Database() as db:
            scheme = create_scheme("edge", db)
            assert scheme.name == "edge"


class TestStoreFacade:
    @pytest.fixture()
    def store(self):
        with XmlRelStore.open(scheme="interval") as opened:
            yield opened

    def test_store_and_query_xml(self, store):
        doc_id = store.store_text(BIB_XML, "bib")
        fragments = store.query_xml(doc_id, "/bib/book[@year = '1994']/title")
        assert fragments == ["<title>TCP/IP Illustrated</title>"]

    def test_query_returns_nodes(self, store):
        doc_id = store.store_text(BIB_XML)
        nodes = store.query(doc_id, "//last")
        assert len(nodes) == 5

    def test_query_pres_sorted(self, store):
        doc_id = store.store_text(BIB_XML)
        pres = store.query_pres(doc_id, "//author")
        assert pres == sorted(pres)

    def test_reconstruct_roundtrip(self, store):
        document = parse_document(BIB_XML)
        doc_id = store.store(document, "bib")
        assert deep_equal(document, store.reconstruct(doc_id))
        assert store.reconstruct_xml(doc_id).startswith("<bib>")

    def test_documents_catalog(self, store):
        store.store_text(BIB_XML, "one")
        store.store_text(BIB_XML, "two")
        assert [r.name for r in store.documents()] == ["one", "two"]

    def test_delete(self, store):
        doc_id = store.store_text(BIB_XML, "gone")
        store.delete(doc_id)
        with pytest.raises(DocumentNotFoundError):
            store.reconstruct(doc_id)

    def test_sql_inspection(self, store):
        doc_id = store.store_text(BIB_XML)
        sql, params = store.sql_for(doc_id, "/bib/book/title")
        assert "accel" in sql
        assert doc_id in params

    def test_store_file(self, store, tmp_path):
        path = tmp_path / "bib.xml"
        path.write_text(BIB_XML, encoding="utf-8")
        doc_id = store.store_file(str(path))
        assert store.documents()[0].name == str(path)
        assert len(store.query_pres(doc_id, "//book")) == 2

    def test_store_file_missing_path(self, store, tmp_path):
        missing = str(tmp_path / "no-such.xml")
        with pytest.raises(XmlRelError, match="cannot read XML file"):
            store.store_file(missing)

    def test_store_file_bad_encoding(self, store, tmp_path):
        path = tmp_path / "latin.xml"
        path.write_bytes("<a>café</a>".encode("latin-1"))
        with pytest.raises(XmlRelError, match="cannot read XML file"):
            store.store_file(str(path))

    def test_keep_whitespace_flag(self, store):
        lean = store.store_text(BIB_XML, keep_whitespace=False)
        fat = store.store_text(BIB_XML, keep_whitespace=True)
        records = {r.doc_id: r.node_count for r in store.documents()}
        assert records[lean] < records[fat]

    def test_storage_accounting(self, store):
        store.store_text(BIB_XML)
        assert store.storage_bytes() > 0
        assert "accel" in store.table_names()

    def test_file_backed_store(self, tmp_path):
        path = str(tmp_path / "xml.db")
        with XmlRelStore.open(path, scheme="dewey") as store:
            doc_id = store.store_text(BIB_XML, "bib")
        # Reopen: the data survived.
        with XmlRelStore.open(path, scheme="dewey") as store:
            assert [r.name for r in store.documents()] == ["bib"]
            assert len(store.query_pres(doc_id, "//book")) == 2

    def test_open_store_alias(self):
        with open_store(scheme="edge") as store:
            assert store.scheme.name == "edge"
        with pytest.raises(XmlRelError, match="path must be a string"):
            open_store(123)


class TestCompare:
    def test_schemes_agree_and_report(self):
        document = parse_document(BIB_XML)
        results = compare_schemes(
            document,
            ["/bib/book/title", "//last", "/bib/book[price > 50]/@id"],
            schemes=["edge", "interval", "dewey"],
        )
        assert set(results) == {"edge", "interval", "dewey"}
        for comparison in results.values():
            assert comparison.storage_bytes > 0
            assert comparison.supported_queries() == 3
            counts = {
                q: o.result_count for q, o in comparison.outcomes.items()
            }
            assert counts["//last"] == 5

    def test_unsupported_marked_not_failed(self):
        document = parse_document(BIB_XML)
        results = compare_schemes(
            document, ["/bib/book[2]/title"], schemes=["xrel", "interval"]
        )
        assert not results["xrel"].outcomes["/bib/book[2]/title"].supported
        assert results["interval"].outcomes["/bib/book[2]/title"].supported
