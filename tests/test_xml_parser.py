"""Unit tests for the XML document parser."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xml import parse_document, parse_fragment
from repro.xml.dom import (
    Comment,
    Element,
    NodeKind,
    ProcessingInstruction,
    Text,
)
from repro.xml.parser import ParseOptions


class TestBasicParsing:
    def test_minimal_document(self):
        doc = parse_document("<a/>")
        assert doc.root_element.tag == "a"
        assert doc.root_element.children == []

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        root = doc.root_element
        assert [c.tag for c in root.child_elements()] == ["b", "d"]
        assert root.find("b").find("c").tag == "c"

    def test_text_content(self):
        doc = parse_document("<a>hello world</a>")
        assert doc.root_element.text == "hello world"

    def test_mixed_content_order(self):
        doc = parse_document("<a>one<b/>two<c/>three</a>")
        kinds = [c.kind for c in doc.root_element.children]
        assert kinds == [
            NodeKind.TEXT,
            NodeKind.ELEMENT,
            NodeKind.TEXT,
            NodeKind.ELEMENT,
            NodeKind.TEXT,
        ]

    def test_adjacent_text_merged(self):
        # CDATA + text + entity all merge into one text node.
        doc = parse_document("<a>one<![CDATA[two]]>three&amp;4</a>")
        children = doc.root_element.children
        assert len(children) == 1
        assert children[0].data == "onetwothree&4"

    def test_xml_declaration_accepted(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.root_element.tag == "a"

    def test_unicode_names_and_text(self):
        doc = parse_document("<livre titre='élan'>čau</livre>")
        assert doc.root_element.tag == "livre"
        assert doc.root_element.get_attribute("titre") == "élan"
        assert doc.root_element.text == "čau"

    def test_bom_is_stripped(self):
        doc = parse_document("﻿<a/>")
        assert doc.root_element.tag == "a"


class TestAttributes:
    def test_double_and_single_quotes(self):
        doc = parse_document("""<a x="1" y='2'/>""")
        assert doc.root_element.attribute_map == {"x": "1", "y": "2"}

    def test_attribute_order_preserved(self):
        doc = parse_document('<a z="1" a="2" m="3"/>')
        assert [a.name for a in doc.root_element.attributes] == ["z", "a", "m"]

    def test_entities_in_attribute_value(self):
        doc = parse_document('<a x="&lt;&amp;&quot;&#65;"/>')
        assert doc.root_element.get_attribute("x") == '<&"A'

    def test_attribute_whitespace_normalization(self):
        doc = parse_document('<a x="one\ntwo\tthree"/>')
        assert doc.root_element.get_attribute("x") == "one two three"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError, match="duplicate attribute"):
            parse_document('<a x="1" x="2"/>')

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError, match="quoted"):
            parse_document("<a x=1/>")

    def test_lt_in_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError, match="not allowed"):
            parse_document('<a x="a<b"/>')


class TestEntities:
    def test_predefined_entities(self):
        doc = parse_document("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root_element.text == "<>&'\""

    def test_character_references(self):
        doc = parse_document("<a>&#65;&#x42;&#x1F600;</a>")
        assert doc.root_element.text == "AB\U0001F600"

    def test_internal_entity_from_dtd(self):
        doc = parse_document(
            '<!DOCTYPE a [<!ENTITY who "World">]><a>Hello &who;!</a>'
        )
        assert doc.root_element.text == "Hello World!"

    def test_nested_entity_expansion(self):
        doc = parse_document(
            '<!DOCTYPE a [<!ENTITY x "1&y;3"><!ENTITY y "2">]><a>&x;</a>'
        )
        assert doc.root_element.text == "123"

    def test_recursive_entity_rejected(self):
        with pytest.raises(XmlSyntaxError, match="too deep"):
            parse_document(
                '<!DOCTYPE a [<!ENTITY x "&y;"><!ENTITY y "&x;">]><a>&x;</a>'
            )

    def test_undefined_entity_rejected(self):
        with pytest.raises(XmlSyntaxError, match="undefined entity"):
            parse_document("<a>&nope;</a>")

    def test_illegal_character_reference_rejected(self):
        with pytest.raises(XmlSyntaxError, match="illegal character"):
            parse_document("<a>&#0;</a>")


class TestStructuralRules:
    def test_mismatched_end_tag(self):
        with pytest.raises(XmlSyntaxError, match="mismatched end tag"):
            parse_document("<a><b></a></b>")

    def test_unterminated_element(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a><b>")

    def test_content_after_root_rejected(self):
        with pytest.raises(XmlSyntaxError, match="after root"):
            parse_document("<a/><b/>")

    def test_missing_root_rejected(self):
        with pytest.raises(XmlSyntaxError, match="root element"):
            parse_document("   ")

    def test_cdata_end_in_text_rejected(self):
        with pytest.raises(XmlSyntaxError, match="]]>"):
            parse_document("<a>x]]>y</a>")

    def test_error_carries_line_and_column(self):
        with pytest.raises(XmlSyntaxError) as exc_info:
            parse_document("<a>\n<b></c>\n</a>")
        assert exc_info.value.line == 2


class TestCommentsAndPIs:
    def test_comment_node(self):
        doc = parse_document("<a><!-- hi --></a>")
        child = doc.root_element.children[0]
        assert isinstance(child, Comment)
        assert child.data == " hi "

    def test_double_hyphen_in_comment_rejected(self):
        with pytest.raises(XmlSyntaxError, match="--"):
            parse_document("<a><!-- x -- y --></a>")

    def test_pi_node(self):
        doc = parse_document('<a><?target some data?></a>')
        child = doc.root_element.children[0]
        assert isinstance(child, ProcessingInstruction)
        assert child.target == "target"
        assert child.data == "some data"

    def test_pi_without_data(self):
        doc = parse_document("<a><?go?></a>")
        child = doc.root_element.children[0]
        assert child.target == "go"
        assert child.data == ""

    def test_reserved_pi_target_rejected(self):
        with pytest.raises(XmlSyntaxError, match="reserved"):
            parse_document("<a><?xml bad?></a>")

    def test_prolog_comment_and_pi(self):
        doc = parse_document("<!-- before --><?style x?><a/><!-- after -->")
        kinds = [c.kind for c in doc.children]
        assert kinds == [
            NodeKind.COMMENT,
            NodeKind.PROCESSING_INSTRUCTION,
            NodeKind.ELEMENT,
            NodeKind.COMMENT,
        ]


class TestWhitespaceHandling:
    SRC = "<a>\n  <b>x</b>\n  <c/>\n</a>"

    def test_whitespace_kept_by_default(self):
        doc = parse_document(self.SRC)
        texts = [
            c for c in doc.root_element.children if isinstance(c, Text)
        ]
        assert len(texts) == 3
        assert all(t.is_whitespace for t in texts)

    def test_whitespace_dropped_on_request(self):
        doc = parse_document(self.SRC, ParseOptions(keep_whitespace=False))
        assert [c.tag for c in doc.root_element.children] == ["b", "c"]
        # Significant text inside <b> is untouched.
        assert doc.root_element.find("b").text == "x"


class TestDoctype:
    def test_doctype_name_recorded(self):
        doc = parse_document("<!DOCTYPE root><root/>")
        assert doc.doctype_name == "root"
        assert doc.dtd is None

    def test_doctype_with_system_id(self):
        doc = parse_document('<!DOCTYPE r SYSTEM "r.dtd"><r/>')
        assert doc.doctype_name == "r"

    def test_doctype_with_public_id(self):
        doc = parse_document(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD" "http://x/d.dtd"><html/>'
        )
        assert doc.doctype_name == "html"

    def test_internal_subset_parsed(self):
        doc = parse_document(
            "<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b EMPTY>]><a/>"
        )
        assert set(doc.dtd.element_names()) == {"a", "b"}

    def test_bracket_inside_dtd_literal(self):
        doc = parse_document(
            '<!DOCTYPE a [<!ENTITY e "has ] bracket">]><a>&e;</a>'
        )
        assert doc.root_element.text == "has ] bracket"


class TestFragments:
    def test_parse_fragment_returns_detached_element(self):
        elem = parse_fragment("<item n='1'><v>x</v></item>")
        assert isinstance(elem, Element)
        assert elem.parent is None
        assert elem.find("v").text == "x"

    def test_fragment_with_surrounding_whitespace(self):
        elem = parse_fragment("  <a/>  ")
        assert elem.tag == "a"


class TestDepthBound:
    def test_deep_but_legal_nesting(self):
        from repro.xml.parser import MAX_ELEMENT_DEPTH

        depth = MAX_ELEMENT_DEPTH
        src = "<n>" * depth + "x" + "</n>" * depth
        doc = parse_document(src)
        assert doc.root_element.string_value == "x"

    def test_excessive_nesting_rejected_cleanly(self):
        from repro.xml.parser import MAX_ELEMENT_DEPTH

        depth = MAX_ELEMENT_DEPTH + 1
        src = "<n>" * depth + "x" + "</n>" * depth
        with pytest.raises(XmlSyntaxError, match="nesting exceeds"):
            parse_document(src)
