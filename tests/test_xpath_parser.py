"""Unit tests for the XPath lexer and parser."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AnyKindTest,
    BinaryOp,
    FilterExpr,
    FunctionCall,
    LocationPath,
    NameTest,
    Negate,
    NumberLiteral,
    KindTest,
    Step,
    StringLiteral,
)
from repro.xpath.lexer import tokenize
from repro.xpath.parser import parse_path, parse_xpath
from repro.xpath.tokens import TokenKind


class TestLexer:
    def test_simple_path_tokens(self):
        kinds = [t.kind for t in tokenize("/a/b")]
        assert kinds == [
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.END,
        ]

    def test_double_slash(self):
        kinds = [t.kind for t in tokenize("//a")]
        assert kinds[0] == TokenKind.DOUBLE_SLASH

    def test_two_char_operators(self):
        values = [t.value for t in tokenize("a!=b <= >= ::")][:-1]
        assert "!=" in values and "<=" in values and ">=" in values

    def test_number_forms(self):
        tokens = tokenize("3 3.14 .5")
        values = [t.value for t in tokens if t.kind == TokenKind.NUMBER]
        assert values == ["3", "3.14", ".5"]

    def test_string_literals_both_quotes(self):
        tokens = tokenize("""'one' "two" """)
        values = [t.value for t in tokens if t.kind == TokenKind.LITERAL]
        assert values == ["one", "two"]

    def test_unterminated_literal_rejected(self):
        with pytest.raises(XPathSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_hyphenated_names(self):
        tokens = tokenize("descendant-or-self::node()")
        assert tokens[0].value == "descendant-or-self"

    def test_unexpected_character_rejected(self):
        with pytest.raises(XPathSyntaxError, match="unexpected character"):
            tokenize("a # b")

    def test_position_recorded(self):
        tokens = tokenize("  abc")
        assert tokens[0].position == 2


class TestPathParsing:
    def test_absolute_child_path(self):
        path = parse_path("/bib/book/title")
        assert path.absolute
        assert [s.axis for s in path.steps] == ["child"] * 3
        assert [s.test.name for s in path.steps] == ["bib", "book", "title"]

    def test_relative_path(self):
        path = parse_path("book/title")
        assert not path.absolute
        assert len(path.steps) == 2

    def test_root_only(self):
        path = parse_path("/")
        assert path.absolute
        assert path.steps == ()

    def test_double_slash_desugars(self):
        path = parse_path("//section")
        assert path.absolute
        assert path.steps[0].axis == "descendant-or-self"
        assert isinstance(path.steps[0].test, AnyKindTest)
        assert path.steps[1] == Step("child", NameTest("section"))

    def test_inner_double_slash(self):
        path = parse_path("/a//b")
        assert [s.axis for s in path.steps] == [
            "child", "descendant-or-self", "child",
        ]

    def test_attribute_abbreviation(self):
        path = parse_path("/a/@id")
        assert path.steps[1].axis == "attribute"
        assert path.steps[1].test.name == "id"

    def test_dot_and_dotdot(self):
        path = parse_path("./../x")
        assert path.steps[0].axis == "self"
        assert path.steps[1].axis == "parent"
        assert path.steps[2].test.name == "x"

    def test_explicit_axes(self):
        path = parse_path("ancestor::a/following-sibling::b")
        assert path.steps[0].axis == "ancestor"
        assert path.steps[1].axis == "following-sibling"

    def test_unknown_axis_rejected(self):
        with pytest.raises(XPathSyntaxError, match="unknown axis"):
            parse_path("sideways::a")

    def test_wildcard(self):
        path = parse_path("/a/*")
        assert path.steps[1].test.is_wildcard

    def test_kind_tests(self):
        path = parse_path("/a/text()")
        assert path.steps[1].test == KindTest("text")
        path = parse_path("/a/node()")
        assert isinstance(path.steps[1].test, AnyKindTest)
        path = parse_path("/a/comment()")
        assert path.steps[1].test == KindTest("comment")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XPathSyntaxError, match="trailing"):
            parse_xpath("/a/b )")


class TestPredicates:
    def test_positional_predicate(self):
        path = parse_path("/a/b[3]")
        (pred,) = path.steps[1].predicates
        assert pred == NumberLiteral(3.0)

    def test_value_predicate(self):
        path = parse_path("/a/b[c = 'x']")
        (pred,) = path.steps[1].predicates
        assert isinstance(pred, BinaryOp)
        assert pred.op == "="
        assert isinstance(pred.left, LocationPath)
        assert pred.right == StringLiteral("x")

    def test_attribute_predicate(self):
        path = parse_path("/book[@year > 2000]")
        (pred,) = path.steps[0].predicates
        assert pred.left.steps[0].axis == "attribute"

    def test_multiple_predicates(self):
        path = parse_path("/a/b[@x][2]")
        assert len(path.steps[1].predicates) == 2

    def test_nested_path_in_predicate(self):
        path = parse_path("/a[b/c = 1]")
        (pred,) = path.steps[0].predicates
        assert len(pred.left.steps) == 2

    def test_function_in_predicate(self):
        path = parse_path("/a[contains(., 'x')]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, FunctionCall)
        assert pred.name == "contains"
        assert len(pred.args) == 2

    def test_and_or_predicates(self):
        path = parse_path("/a[b = 1 and c = 2 or d]")
        (pred,) = path.steps[0].predicates
        assert pred.op == "or"
        assert pred.left.op == "and"


class TestExpressions:
    def test_precedence_arith(self):
        expr = parse_xpath("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_div_mod_operators(self):
        expr = parse_xpath("10 div 2 mod 3")
        assert expr.op == "mod"
        assert expr.left.op == "div"

    def test_div_as_element_name(self):
        # In path position 'div' is an element name, not an operator.
        path = parse_path("/html/div")
        assert path.steps[1].test.name == "div"

    def test_star_as_multiply_vs_wildcard(self):
        expr = parse_xpath("2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "*"
        path = parse_path("*")
        assert path.steps[0].test.is_wildcard

    def test_unary_minus(self):
        expr = parse_xpath("-5")
        assert isinstance(expr, Negate)

    def test_union(self):
        expr = parse_xpath("/a | /b")
        assert expr.op == "|"

    def test_comparison_chain(self):
        expr = parse_xpath("1 < 2 = true()")
        assert expr.op == "="
        assert expr.left.op == "<"

    def test_parenthesized_filter_with_predicate(self):
        expr = parse_xpath("(//a)[1]")
        assert isinstance(expr, FilterExpr)
        assert expr.predicates == (NumberLiteral(1.0),)

    def test_filter_with_trailing_path(self):
        expr = parse_xpath("(//a)[1]/b")
        assert isinstance(expr, FilterExpr)
        assert expr.steps[-1].test.name == "b"

    def test_function_call_no_args(self):
        expr = parse_xpath("true()")
        assert expr == FunctionCall("true")

    def test_parse_path_rejects_non_path(self):
        with pytest.raises(XPathSyntaxError, match="location path"):
            parse_path("1 + 2")


class TestRoundtripStr:
    """str(parse(x)) must re-parse to the same AST."""

    @pytest.mark.parametrize(
        "expression",
        [
            "/bib/book/title",
            "//section//title",
            "/a/b[@id = 'x']",
            "/a/b[3]",
            "book/author",
            "/a//b[c = 1][2]",
            "/",
            ".",
            "/a/@href",
            "/a/text()",
            "ancestor::x",
        ],
    )
    def test_roundtrip(self, expression):
        first = parse_xpath(expression)
        again = parse_xpath(str(first))
        assert first == again
