"""Concurrency analysis: static rules C001–C005, the lock model and
registry, the ``--json`` report, and the runtime lock-order harness."""

import os
import threading
from pathlib import Path

import pytest

from repro.analysis.concurrency import (
    LOCK_ORDER,
    LOCK_SITES,
    build_report,
    lint_concurrency,
    main as concurrency_main,
    sites_for,
)
from repro.analysis.lockharness import (
    LockWatcher,
    OrderedLock,
    instrument_sharded_store,
)
from repro.errors import LockDisciplineError
from repro.obs.metrics import MetricsRegistry
from repro.serve import ShardedStore

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

#: Fixture registry: ranks the attributes the seeded-bug modules use
#: (fixture paths are deliberately not in the real ``LOCK_SITES``).
FIXTURE_SITES = {
    "fixture/mod.py": {
        "_outer": "shard",
        "_inner": "metrics",
        "_shard_locks": "shard",
    },
}


def lint_fixture(tmp_path, source, sites=None, order=None):
    """Write one seeded-bug module and analyze it."""
    path = tmp_path / "fixture" / "mod.py"
    path.parent.mkdir(exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_concurrency(
        [tmp_path],
        root=tmp_path,
        sites=sites if sites is not None else {},
        order=order,
    )


# -- static rules, one seeded bug each -------------------------------------------


class TestStaticRules:
    def test_c001_direct_lock_order_inversion(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

class Bad:
    def __init__(self):
        self._outer = threading.Lock()
        self._inner = threading.Lock()

    def right(self):
        with self._outer:
            with self._inner:
                pass

    def wrong(self):
        with self._inner:
            with self._outer:
                pass
""",
            sites=FIXTURE_SITES,
        )
        assert [d.code for d in findings] == ["C001"]
        assert findings[0].is_error
        assert "rank 0" in findings[0].message
        assert findings[0].location.endswith(":15")  # only wrong()

    def test_c001_through_same_class_call_path(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

class Bad:
    def __init__(self):
        self._outer = threading.Lock()
        self._inner = threading.Lock()

    def wrong(self):
        with self._inner:
            self.take_outer()

    def take_outer(self):
        with self._outer:
            pass
""",
            sites=FIXTURE_SITES,
        )
        assert [d.code for d in findings] == ["C001"]
        assert "call path self.take_outer()" in findings[0].message

    def test_c002_queue_wait_under_unranked_lock(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import queue
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = queue.Queue()

    def drain(self):
        with self._lock:
            return self._pending.get()
""",
        )
        assert [d.code for d in findings] == ["C002"]
        assert "blocking queue call" in findings[0].message

    def test_c002_respects_blocking_allowances(self, tmp_path):
        # "shard" allows execute/acquire underneath — sleep stays banned.
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading
import time

class Writer:
    def __init__(self, db):
        self._outer = threading.Lock()
        self.db = db

    def commit(self):
        with self._outer:
            self.db.execute("COMMIT")

    def stall(self):
        with self._outer:
            time.sleep(1.0)
""",
            sites=FIXTURE_SITES,
        )
        assert [d.code for d in findings] == ["C002"]
        assert "time.sleep" in findings[0].message

    def test_c002_timeout_and_semaphore_are_exempt(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import queue
import threading

class Gated:
    def __init__(self):
        self._gate = threading.Semaphore(4)
        self._lock = threading.Lock()
        self._pending = queue.Queue()

    def bounded_wait(self):
        with self._lock:
            return self._pending.get(timeout=0.5)

    def gated_wait(self):
        with self._gate:
            return self._pending.get()
""",
        )
        assert findings == []

    def test_c003_unguarded_write_to_guarded_attribute(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1

    def reset(self):
        self.value = 0
""",
        )
        assert [d.code for d in findings] == ["C003"]
        assert "self.value" in findings[0].message
        assert findings[0].severity == "warning"
        assert findings[0].location.endswith(":13")  # reset(), not __init__

    def test_c004_anonymous_thread(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

def spawn(run):
    good = threading.Thread(target=run, name="xmlrel-w0", daemon=True)
    bad = threading.Thread(target=run)
    return good, bad
""",
        )
        assert [d.code for d in findings] == ["C004"]
        assert "name=" in findings[0].message
        assert "daemon=" in findings[0].message

    def test_c005_direct_double_acquire(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

class Bad:
    def __init__(self):
        self._lock = threading.Lock()

    def recurse(self):
        with self._lock:
            with self._lock:
                pass
""",
        )
        assert [d.code for d in findings] == ["C005"]
        assert "self-deadlock" in findings[0].message

    def test_c005_through_same_class_call_path(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

class Bad:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self.helper()

    def helper(self):
        with self._lock:
            pass
""",
        )
        assert [d.code for d in findings] == ["C005"]
        assert "call path self.helper()" in findings[0].message

    def test_c005_rlock_is_exempt(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

class Fine:
    def __init__(self):
        self._lock = threading.RLock()

    def recurse(self):
        with self._lock:
            with self._lock:
                pass
""",
        )
        assert findings == []

    def test_loop_acquired_lock_list_is_tracked(self, tmp_path):
        findings, _suppressed, locks = lint_fixture(
            tmp_path,
            """\
import queue
import threading

class Store:
    def __init__(self, n):
        self._shard_locks = [threading.Lock() for _ in range(n)]
        self._pending = queue.Queue()

    def freeze(self):
        for lock in self._shard_locks:
            lock.acquire()
        item = self._pending.get()
        for lock in reversed(self._shard_locks):
            lock.release()
        return item
""",
            sites=FIXTURE_SITES,
        )
        # The queue wait happens while every shard lock is held — but
        # "shard" allows neither queue waits... it allows only
        # execute/acquire, so the get() is flagged.
        assert [d.code for d in findings] == ["C002"]
        assert any(
            lock["attr"] == "_shard_locks" and lock["kind"] == "lock_list"
            for lock in locks
        )

    def test_syntax_error_is_c000(self, tmp_path):
        findings, _suppressed, _locks = lint_fixture(
            tmp_path, "def broken(:\n"
        )
        assert [d.code for d in findings] == ["C000"]


# -- pragma suppression -----------------------------------------------------------


class TestPragmas:
    def test_inline_pragma_suppresses(self, tmp_path):
        findings, suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import queue
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = queue.Queue()

    def drain(self):
        with self._lock:
            return self._pending.get()  # lint: allow(C002)
""",
        )
        assert findings == []
        assert [d.code for d in suppressed] == ["C002"]

    def test_comment_line_pragma_covers_next_line(self, tmp_path):
        findings, suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

def spawn(run):
    # short-lived, joined before return  # lint: allow(C004)
    return threading.Thread(target=run)
""",
        )
        assert findings == []
        assert [d.code for d in suppressed] == ["C004"]

    def test_pragma_is_code_specific(self, tmp_path):
        findings, suppressed, _locks = lint_fixture(
            tmp_path,
            """\
import threading

def spawn(run):
    return threading.Thread(target=run)  # lint: allow(C002)
""",
        )
        assert [d.code for d in findings] == ["C004"]
        assert suppressed == []


# -- the lock model and the canonical registry ------------------------------------


class TestLockModel:
    def test_sites_for_suffix_matches(self):
        attrs = sites_for("src/repro/serve/pool.py", LOCK_SITES)
        assert attrs == {"_lock": "pool"}
        assert sites_for("unrelated/module.py", LOCK_SITES) == {}

    def test_lock_order_is_well_formed(self):
        ranks = [c.rank for c in LOCK_ORDER]
        assert ranks == sorted(ranks) == list(range(len(LOCK_ORDER)))
        assert [c.name for c in LOCK_ORDER] == [
            "shard", "map", "pool", "metrics",
        ]

    def test_registry_matches_tree(self):
        """Every registered module exists and every declared lock
        attribute is actually found by the analyzer."""
        _findings, _suppressed, locks = lint_concurrency(
            [SRC_ROOT / "repro"], root=SRC_ROOT
        )
        modeled = {(lock["file"], lock["attr"]) for lock in locks}
        for suffix, attrs in LOCK_SITES.items():
            assert (SRC_ROOT / suffix).exists(), suffix
            for attr in attrs:
                assert (suffix, attr) in modeled, (suffix, attr)

    def test_every_modeled_mutex_in_registered_module_is_ranked(self):
        _findings, _suppressed, locks = lint_concurrency(
            [SRC_ROOT / "repro"], root=SRC_ROOT
        )
        for lock in locks:
            if sites_for(lock["file"], LOCK_SITES):
                assert lock["rank"] is not None, lock

    def test_src_repro_passes_the_strict_gate(self):
        """The acceptance criterion: zero unsuppressed findings over
        the real tree (suppressed intentional ones may exist)."""
        findings, suppressed, locks = lint_concurrency(
            [SRC_ROOT / "repro"], root=SRC_ROOT
        )
        assert findings == []
        # The one designed-in suppression: the ingest worker's
        # queue.get() under the single-writer shard lock.
        assert [d.code for d in suppressed] == ["C002"]
        assert "serve/sharded.py" in suppressed[0].location
        assert len(locks) >= 15


# -- the machine-readable report ---------------------------------------------------


class TestConcurrencyReport:
    def test_build_report_schema(self, tmp_path):
        path = tmp_path / "fixture" / "mod.py"
        path.parent.mkdir()
        path.write_text(
            "import threading\n\n"
            "def spawn(run):\n"
            "    return threading.Thread(target=run)\n",
            encoding="utf-8",
        )
        report = build_report([tmp_path], root=tmp_path, sites={})
        assert set(report) == {
            "tool", "lock_order", "locks", "findings", "suppressed",
            "count",
        }
        assert report["tool"] == "xmlrel-concurrency"
        assert report["lock_order"] == [
            {
                "name": c.name,
                "rank": c.rank,
                "blocking_ok": list(c.blocking_ok),
            }
            for c in LOCK_ORDER
        ]
        assert report["count"] == len(report["findings"]) == 1
        finding = report["findings"][0]
        assert set(finding) == {"code", "severity", "message", "location"}
        assert finding["code"] == "C004"

    def test_cli_strict_gate_and_json_artifact(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "concurrency-report.json"
        code = concurrency_main(
            ["--strict", "--json", str(report_path), str(SRC_ROOT / "repro")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "xmlrel-concurrency: 0 finding(s)" in out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["count"] == 0
        assert report["tool"] == "xmlrel-concurrency"
        assert len(report["suppressed"]) == 1


# -- the runtime lock-order harness ------------------------------------------------


class TestLockWatcher:
    def pair(self, watcher):
        outer = watcher.wrap(threading.Lock(), "shard[0]", "shard", index=0)
        inner = watcher.wrap(threading.Lock(), "metrics", "metrics")
        return outer, inner

    def test_clean_nesting_records_edges_only(self):
        watcher = LockWatcher()
        outer, inner = self.pair(watcher)
        with outer:
            with inner:
                pass
        assert watcher.violations == ()
        watcher.assert_clean()
        report = watcher.report()
        assert report["tool"] == "xmlrel-lockharness"
        assert report["acquires"] == 2
        assert report["releases"] == 2
        assert report["edges"] == {"shard[0]": ["metrics"]}
        assert report["count"] == 0

    def test_rank_inversion_is_recorded_not_raised(self):
        metrics = MetricsRegistry()
        watcher = LockWatcher(metrics=metrics)
        outer, inner = self.pair(watcher)
        with inner:
            with outer:  # metrics (rank 3) held while taking shard (0)
                pass
        violations = watcher.violations
        assert len(violations) == 1
        assert violations[0].kind == "order"
        assert violations[0].acquired == "shard[0]"
        assert violations[0].held == ("metrics",)
        snap = metrics.snapshot()
        assert snap["counters"]["concurrency.order_violations"] == 1
        with pytest.raises(LockDisciplineError):
            watcher.assert_clean()
        watcher.reset()
        watcher.assert_clean()

    def test_same_class_index_order_is_enforced(self):
        watcher = LockWatcher()
        shard0 = watcher.wrap(
            threading.Lock(), "shard[0]", "shard", index=0
        )
        shard1 = watcher.wrap(
            threading.Lock(), "shard[1]", "shard", index=1
        )
        with shard0:
            with shard1:  # ascending: fine
                pass
        assert watcher.violations == ()
        with shard1:
            with shard0:  # descending: violation (and an ABBA cycle)
                pass
        by_kind = {v.kind: v for v in watcher.violations}
        assert set(by_kind) == {"order", "cycle"}
        assert "index 0 under index 1" in by_kind["order"].detail

    def test_abba_cycle_detected_across_runs(self):
        metrics = MetricsRegistry()
        watcher = LockWatcher(metrics=metrics)
        first = watcher.wrap(threading.Lock(), "m1", "metrics")
        second = watcher.wrap(threading.Lock(), "m2", "metrics")
        with first:
            with second:  # equal ranks — no order violation
                pass
        with second:
            with first:  # closes the m1 -> m2 -> m1 cycle
                pass
        violations = watcher.violations
        assert [v.kind for v in violations] == ["cycle"]
        assert "m1 -> m2" in violations[0].detail or (
            "m2 -> m1" in violations[0].detail
        )
        assert metrics.snapshot()["counters"]["concurrency.cycles"] == 1

    def test_double_acquire_raises_before_blocking(self):
        metrics = MetricsRegistry()
        watcher = LockWatcher(metrics=metrics)
        lock = watcher.wrap(threading.Lock(), "map", "map")
        with lock:
            with pytest.raises(LockDisciplineError):
                lock.acquire()
        # The refusal happened before touching the inner lock, so the
        # with-block released cleanly and the lock is reusable.
        with lock:
            pass
        snap = metrics.snapshot()
        assert snap["counters"]["concurrency.double_acquires"] == 1
        assert watcher.violations == ()  # raised, not recorded

    def test_reentrant_wrap_allows_reacquire(self):
        watcher = LockWatcher()
        rlock = watcher.wrap(
            threading.RLock(), "map", "map", reentrant=True
        )
        with rlock:
            with rlock:
                pass
        assert watcher.violations == ()

    def test_wrap_is_idempotent(self):
        watcher = LockWatcher()
        wrapped = watcher.wrap(threading.Lock(), "map", "map")
        assert watcher.wrap(wrapped, "other", "pool") is wrapped

    def test_held_stacks_are_per_thread(self):
        watcher = LockWatcher()
        outer, inner = self.pair(watcher)
        ready = threading.Event()
        done = threading.Event()

        def other():
            ready.wait(5)
            with inner:  # held set here is empty — no edge, no violation
                pass
            done.set()

        worker = threading.Thread(
            target=other, name="xmlrel-test-held", daemon=True
        )
        worker.start()
        with outer:
            ready.set()
            assert done.wait(5)
        worker.join()
        assert watcher.violations == ()
        assert watcher.report()["edges"] == {}

    def test_held_labels_reflects_current_stack(self):
        watcher = LockWatcher()
        outer, inner = self.pair(watcher)
        with outer:
            with inner:
                assert watcher.held_labels() == ("shard[0]", "metrics")
        assert watcher.held_labels() == ()


class TestInstrumentedStore:
    SMALL = "<bib><book year='{y}'><title>T{y}</title></book></bib>"

    def test_live_store_runs_clean_and_idempotent(self, tmp_path):
        watcher = LockWatcher()
        store = ShardedStore.open(
            os.path.join(tmp_path, "store.d"), scheme="interval", shards=2
        )
        instrument_sharded_store(store, watcher)
        assert isinstance(store._map_lock, OrderedLock)
        map_lock = store._map_lock
        instrument_sharded_store(store, watcher)  # idempotent
        assert store._map_lock is map_lock
        with store:
            ids = [
                store.store_text(self.SMALL.format(y=2000 + i), f"d{i}")
                for i in range(4)
            ]
            for doc_id in ids:
                assert store.query_xml(doc_id, "/bib/book/title")
            assert sum(store.shard_counts().values()) == 4
        watcher.assert_clean()
        report = watcher.report()
        assert report["acquires"] > 0
        assert report["acquires"] == report["releases"]
        assert report["count"] == 0
        # The recorded graph respects the declared order: every edge
        # goes from an outer class to an equal-or-inner one.
        rank_of = {"shard": 0, "map": 1, "pool": 2, "metrics": 3}

        def rank(label):
            return rank_of[label.split(".")[0].split("[")[0]]

        for source, targets in report["edges"].items():
            for target in targets:
                assert rank(source) <= rank(target), (source, target)

    def test_instrumented_store_detects_seeded_inversion(self, tmp_path):
        """The harness catches an intentionally inverted pair on a
        live store's own locks."""
        watcher = LockWatcher()
        store = ShardedStore.open(
            os.path.join(tmp_path, "store.d"), scheme="interval", shards=2
        )
        instrument_sharded_store(store, watcher)
        with store:
            store.store_text(self.SMALL.format(y=1), "d0")
            with store.metrics._lock:  # innermost class first...
                with store._shard_locks[0]:  # ...then shard: inverted
                    pass
        violations = watcher.violations
        assert any(
            v.kind == "order" and v.acquired == "shard[0]"
            for v in violations
        )
        with pytest.raises(LockDisciplineError):
            watcher.assert_clean()
