"""Differential tests: every scheme's SQL answers must equal the
in-memory reference evaluator's, node for node (compared via the shared
``pre`` ids)."""

import pytest

from repro.core.registry import available_schemes
from repro.errors import UnsupportedQueryError
from repro.query.plan import plan_path
from repro.relational.database import Database
from repro.xml import parse_document
from repro.xml.parser import ParseOptions
from repro.xpath import evaluate_nodes

from tests.conftest import BIB_DTD_XML, make_scheme

ALL_SCHEMES = available_schemes()

# The core query set every scheme must answer exactly.
CORE_QUERIES = [
    "/bib/book",
    "/bib/book/title",
    "/bib/book/author/last",
    "//last",
    "/bib//last",
    "//author/last",
    "/bib/book/@year",
    "/bib/book/@id",
    "/bib/book/title/text()",
    "/bib/book[@year = '2000']/title",
    "/bib/book[@year != '2000']/title",
    "/bib/book[price > 50]/@id",
    "/bib/book[price < 50]/@id",
    "/bib/book[price >= 39.95]/title",
    "/bib/book[author/last = 'Suciu']/title",
    "//book[author/last = 'Suciu']/title",
    "/bib/book[publisher = 'Addison-Wesley']/price",
    "/bib/book[title]/title",
    "/bib/book[not(author/first)]/@id",
    "/bib/article[author]/title",
    "/bib/book[contains(title, 'Web')]/@id",
    "/bib/book[starts-with(title, 'TCP')]/@id",
    "/bib/book[author/last = 'Nobody']/title",
    "/bib/journal",
    "/bib/book[@year = '2000' and price < 50]/title",
    "/bib/book[@year = '1994' or @year = '2001']/title",
    "/bib/book[text()]",
]

# Queries needing features some schemes reject (wildcards, positions,
# kind-agnostic steps): each entry lists the schemes that must answer.
EXTENDED_QUERIES = [
    ("/bib/*", ["edge", "binary", "interval", "dewey", "xrel", "inlining"]),
    ("/bib/*/title", ["edge", "binary", "interval", "dewey", "xrel",
                      "inlining"]),
    ("/bib/book[2]/title", ["edge", "binary", "interval", "dewey",
                            "inlining"]),
    ("/bib/book/author[1]/last", ["edge", "binary", "interval", "dewey",
                                  "inlining"]),
    ("/bib/book/author[3]/last", ["edge", "binary", "interval", "dewey",
                                  "inlining"]),
    ("//book/author/..", ["edge", "binary", "interval", "dewey"]),
    ("//author//text()", ["edge", "binary", "interval", "dewey", "xrel",
                          "universal"]),
    ("/bib/book/node()", ["edge", "binary", "interval", "dewey"]),
    ("//*[@id]", ["edge", "binary", "interval", "dewey", "xrel",
                  "inlining"]),
    ("/bib/book[@id][1]/title", ["edge", "binary", "interval", "dewey",
                                 "inlining"]),
]


@pytest.fixture(scope="module")
def stores():
    """One populated store per scheme, shared across this module."""
    doc = parse_document(BIB_DTD_XML, ParseOptions(keep_whitespace=False))
    built = {}
    databases = []
    for name in ALL_SCHEMES:
        db = Database()
        databases.append(db)
        scheme = make_scheme(name, db, dtd=doc.dtd)
        result = scheme.store(doc, "bib")
        built[name] = (scheme, result.doc_id)
    yield doc, built
    for db in databases:
        db.close()


def expected_pres(doc, query):
    return sorted(
        node.order_key for node in evaluate_nodes(doc, query)
        if node.order_key > 0  # SQL answers exclude the document node
    )


@pytest.mark.parametrize("query", CORE_QUERIES)
@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_core_query_differential(stores, scheme_name, query):
    doc, built = stores
    scheme, doc_id = built[scheme_name]
    assert scheme.query_pres(doc_id, query) == expected_pres(doc, query)


@pytest.mark.parametrize("query,supporting", EXTENDED_QUERIES)
def test_extended_query_differential(stores, query, supporting):
    doc, built = stores
    expected = expected_pres(doc, query)
    for scheme_name in ALL_SCHEMES:
        scheme, doc_id = built[scheme_name]
        if scheme_name in supporting:
            assert scheme.query_pres(doc_id, query) == expected, scheme_name
        else:
            with pytest.raises(UnsupportedQueryError):
                scheme.query_pres(doc_id, query)


class TestQueryNodes:
    def test_query_nodes_reconstructs_results(self, stores):
        doc, built = stores
        scheme, doc_id = built["interval"]
        nodes = scheme.query_nodes(doc_id, "/bib/book/title")
        assert [n.string_value for n in nodes] == [
            "TCP/IP Illustrated", "Data on the Web",
        ]

    def test_query_nodes_attributes(self, stores):
        doc, built = stores
        scheme, doc_id = built["edge"]
        nodes = scheme.query_nodes(doc_id, "/bib/book/@year")
        assert [n.value for n in nodes] == ["1994", "2000"]


class TestPlanning:
    def test_relative_path_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="relative"):
            plan_path("book/title")

    def test_bare_root_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="root path"):
            plan_path("/")

    def test_extended_axes_planned(self):
        plan = plan_path("/a/b/ancestor::x")
        assert plan.steps[-1].axis == "ancestor"

    def test_positional_on_extended_axis_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="proximity"):
            plan_path("/a/following-sibling::b[2]")

    def test_descendant_composed_with_extended_axis_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="composed"):
            plan_path("/a//ancestor::b")

    def test_positional_on_descendant_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="positional"):
            plan_path("//a[2]")

    def test_non_literal_comparison_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="literal"):
            plan_path("/a[b = c]")

    def test_string_relational_comparison_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="relational"):
            plan_path("/a[b > 'x']")

    def test_descendant_desugaring(self):
        plan = plan_path("//a//b")
        assert [s.is_descendant for s in plan.steps] == [True, True]

    def test_swapped_comparison_normalized(self):
        plan = plan_path("/a[2000 < @year]")
        (predicate,) = plan.steps[0].predicates
        assert predicate.op == ">"
        assert predicate.numeric

    def test_non_path_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="location path"):
            plan_path("count(/a)")


class TestJoinCounts:
    """Structural sanity of the E8 metric: interval/dewey paths use a
    join per step; inlining uses fewer (inlined hops are free)."""

    def test_interval_join_growth(self, stores):
        __, built = stores
        scheme, doc_id = built["interval"]
        translator = scheme.translator()
        j2 = translator.join_count(doc_id, "/bib/book")
        j4 = translator.join_count(doc_id, "/bib/book/author/last")
        assert j4 == j2 + 2

    def test_inlining_saves_joins(self, stores):
        __, built = stores
        inline_scheme, inline_id = built["inlining"]
        interval_scheme, interval_id = built["interval"]
        # `last` has in-degree 1 in the bib DTD, so it is inlined into
        # author and its step costs no join (title would not work here:
        # it is shared between book and article, hence its own relation).
        query = "/bib/book/author/last"
        assert (
            inline_scheme.translator().join_count(inline_id, query)
            < interval_scheme.translator().join_count(interval_id, query)
        )

    def test_edge_descendant_costs_recursion(self, stores):
        __, built = stores
        scheme, doc_id = built["edge"]
        sql, __params = scheme.translator().sql_for(doc_id, "/bib//last")
        assert "WITH RECURSIVE" in sql

    def test_interval_descendant_needs_no_recursion(self, stores):
        __, built = stores
        scheme, doc_id = built["interval"]
        sql, __params = scheme.translator().sql_for(doc_id, "/bib//last")
        assert "RECURSIVE" not in sql


class TestUniversalLimits:
    def test_unknown_label_returns_empty(self, stores):
        __, built = stores
        scheme, doc_id = built["universal"]
        assert scheme.query_pres(doc_id, "/bib/zzz") == []

    def test_wildcard_rejected(self, stores):
        __, built = stores
        scheme, doc_id = built["universal"]
        with pytest.raises(UnsupportedQueryError):
            scheme.query_pres(doc_id, "/bib/*")


class TestInliningLimits:
    def test_undeclared_name_returns_empty(self, stores):
        __, built = stores
        scheme, doc_id = built["inlining"]
        assert scheme.query_pres(doc_id, "/bib/zzz") == []

    def test_recursive_descendant_rejected(self):
        from repro.storage.inlining import InliningScheme
        from repro.xml.dtd import parse_dtd

        dtd = parse_dtd(
            "<!ELEMENT part (name, part*)><!ELEMENT name (#PCDATA)>",
            root_name="part",
        )
        with Database() as db:
            scheme = InliningScheme(db, dtd=dtd)
            doc = parse_document(
                "<part><name>a</name><part><name>b</name></part></part>"
            )
            result = scheme.store(doc, "parts")
            # Descendant from the root is fine (no chain needed)...
            assert len(scheme.query_pres(result.doc_id, "//name")) == 2
            # ...but descendant *through* the recursion is rejected.
            with pytest.raises(UnsupportedQueryError, match="recursive"):
                scheme.query_pres(result.doc_id, "/part//name")


class TestUnionQueries:
    """Top-level '|' unions, supported scheme-independently."""

    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_union_matches_evaluator(self, stores, scheme_name):
        doc, built = stores
        scheme, doc_id = built[scheme_name]
        query = "/bib/book/title | /bib/article/title"
        assert scheme.query_pres(doc_id, query) == expected_pres(doc, query)

    def test_three_way_union(self, stores):
        doc, built = stores
        scheme, doc_id = built["interval"]
        query = "//last | //first | /bib/book/@id"
        assert scheme.query_pres(doc_id, query) == expected_pres(doc, query)

    def test_overlapping_arms_deduplicated(self, stores):
        doc, built = stores
        scheme, doc_id = built["dewey"]
        query = "//title | /bib/book/title"
        assert scheme.query_pres(doc_id, query) == expected_pres(doc, query)

    def test_union_arm_failure_propagates(self, stores):
        __, built = stores
        scheme, doc_id = built["xrel"]
        with pytest.raises(UnsupportedQueryError):
            scheme.query_pres(doc_id, "//title | /bib/book[2]")


class TestAggregatePredicates:
    """count() comparisons and [last()] on the node-table schemes."""

    TABLE_SCHEMES = ("edge", "binary", "interval", "dewey")

    QUERIES = [
        "/bib/book[count(author) = 3]/@id",
        "/bib/book[count(author) > 1]/title",
        "/bib/book[count(author) != 1]/title",
        "/bib/*[count(author) >= 1]",
        "/bib/book[count(author/first) = 3]/@id",
        "/bib/book[count(@id) = 1]",
        "/bib/book[count(title/text()) = 1]",
        "/bib/book[last()]/title",
        "/bib/book/author[last()]/last",
        "/bib/*[position() = last()]",
        "/bib/book[not(last())]/@id",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_differential(self, stores, query):
        doc, built = stores
        expected = expected_pres(doc, query)
        for scheme_name in self.TABLE_SCHEMES:
            scheme, doc_id = built[scheme_name]
            assert scheme.query_pres(doc_id, query) == expected, scheme_name

    def test_count_dot_is_static(self, stores):
        doc, built = stores
        scheme, doc_id = built["interval"]
        query = "/bib/book[count(.) = 1]/@id"
        assert scheme.query_pres(doc_id, query) == expected_pres(doc, query)

    def test_last_on_descendant_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="proximity"):
            plan_path("//a[last()]")

    def test_unsupported_on_path_schemes(self, stores):
        __, built = stores
        for scheme_name in ("universal", "xrel", "inlining"):
            scheme, doc_id = built[scheme_name]
            with pytest.raises(UnsupportedQueryError):
                scheme.query_pres(doc_id, "/bib/book[count(author) = 3]")


class TestBooleanContextPredicates:
    """Numbers under not/and/or are boolean-converted, not positional."""

    QUERIES = [
        "/bib/book[true()]/@id",
        "/bib/book[false()]/@id",
        "/bib/book[not(2)]/@id",          # not(true) — empty
        "/bib/book[2 and @id]/@id",       # 2 is truthy here
        "/bib/book[0 or author]/@id",     # 0 is falsy here
    ]

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_differential(self, stores, scheme_name, query):
        doc, built = stores
        scheme, doc_id = built[scheme_name]
        assert scheme.query_pres(doc_id, query) == expected_pres(doc, query)
