"""Randomized update-sequence integration tests.

A seeded sequence of inserts and deletes is applied in parallel to an
in-memory DOM and to each updatable scheme's database; after every
operation the database must reconstruct to exactly the mutated DOM, and
at the end a query battery must agree with the evaluator.

Node ids and document-order stamps deliberately diverge after updates
(only the interval scheme renumbers), so DOM nodes are matched to their
database rows through unique marker attributes, never through order
stamps.
"""

import random

import pytest

from repro.core.registry import create_scheme
from repro.relational.database import Database
from repro.updates import delete_subtree, insert_subtree
from repro.xml import parse_document, parse_fragment
from repro.xml.dom import Element, deep_equal
from repro.xml.serialize import serialize
from repro.xpath import evaluate_nodes

UPDATABLE = ("edge", "binary", "interval", "dewey")

START = (
    "<inventory>"
    "<shelf m='s1'><box m='b1'><item m='i1'>one</item></box></shelf>"
    "<shelf m='s2'><box m='b2'><item m='i2'>two</item>"
    "<item m='i3'>three</item></box></shelf>"
    "</inventory>"
)

FINAL_QUERIES = [
    "//item",
    "//box/item",
    "/inventory/shelf/box",
    "//item[@m = 'i2']",
    "//box[item]/@m",
    "//shelf[not(box)]",
]


def _db_id_of(scheme, doc_id, element):
    """Resolve a DOM element's database id via its unique marker."""
    marker = element.get_attribute("m")
    ids = scheme.query_pres(
        doc_id, f"//{element.tag}[@m = '{marker}']"
    )
    assert len(ids) == 1, (element.tag, marker, ids)
    return ids[0]


def _element_children(parent):
    return [c for c in parent.children if isinstance(c, Element)]


def _dom_index(parent, element_index):
    """Convert an index among element children to a DOM child index."""
    seen = 0
    for position, child in enumerate(parent.children):
        if isinstance(child, Element):
            if seen == element_index:
                return position
            seen += 1
    return len(parent.children)


class _Mutator:
    """Applies the same random operations to DOM and database."""

    def __init__(self, scheme, doc_id, document, rng):
        self.scheme = scheme
        self.doc_id = doc_id
        self.document = document
        self.rng = rng
        self.counter = 0

    def fragment_source(self) -> str:
        self.counter += 1
        token = f"n{self.counter}"
        kind = self.rng.choice(("item", "box", "shelf"))
        if kind == "item":
            return f"<item m='{token}'>value-{token}</item>"
        if kind == "box":
            return (
                f"<box m='{token}'><item m='{token}x'>v</item></box>"
            )
        return f"<shelf m='{token}'><box m='{token}x'/></shelf>"

    def eligible_parents(self):
        return [
            e for e in self.document.iter_elements()
            if e.tag in ("inventory", "shelf", "box")
        ]

    def deletable(self):
        return [
            e for e in self.document.iter_elements()
            if e.tag != "inventory"
        ]

    def step(self):
        candidates = self.deletable()
        if len(candidates) > 2 and self.rng.random() < 0.4:
            victim = self.rng.choice(candidates)
            db_id = _db_id_of(self.scheme, self.doc_id, victim)
            victim.parent.remove_child(victim)
            delete_subtree(self.scheme, self.doc_id, db_id)
        else:
            parent = self.rng.choice(self.eligible_parents())
            index = self.rng.randint(0, len(_element_children(parent)))
            source = self.fragment_source()
            if parent.tag == "inventory":
                parent_id = self.scheme.query_pres(
                    self.doc_id, "/inventory"
                )[0]
            else:
                parent_id = _db_id_of(self.scheme, self.doc_id, parent)
            parent.insert_child(
                _dom_index(parent, index), parse_fragment(source)
            )
            insert_subtree(
                self.scheme, self.doc_id, parent_id,
                parse_fragment(source), index=index,
            )
        rebuilt = self.scheme.reconstruct(self.doc_id)
        assert deep_equal(self.document, rebuilt), (
            f"divergence after an operation:\n"
            f"dom: {serialize(self.document)}\ndb:  {serialize(rebuilt)}"
        )


@pytest.mark.parametrize("scheme_name", UPDATABLE)
@pytest.mark.parametrize("seed", range(3))
def test_random_update_sequence(scheme_name, seed):
    rng = random.Random(seed * 31 + 7)
    with Database() as db:
        scheme = create_scheme(scheme_name, db)
        document = parse_document(START)
        doc_id = scheme.store(document, "inventory").doc_id
        mutator = _Mutator(scheme, doc_id, document, rng)
        for __ in range(12):
            mutator.step()
        # Queries agree with the evaluator on the mutated document,
        # compared by serialized results (ids are no longer order stamps).
        for query in FINAL_QUERIES:
            got_xml = sorted(
                serialize(scheme.reconstruct_subtree(doc_id, pre))
                for pre in scheme.query_pres(doc_id, query)
            )
            expected_xml = sorted(
                serialize(node) for node in evaluate_nodes(document, query)
            )
            assert got_xml == expected_xml, (scheme_name, query)


@pytest.mark.parametrize("scheme_name", UPDATABLE)
def test_interleaved_insert_delete_same_parent(scheme_name):
    """A tight loop of insert/delete on one parent must keep sibling
    order exact (ordinal bookkeeping is the fiddly part)."""
    with Database() as db:
        scheme = create_scheme(scheme_name, db)
        document = parse_document(
            "<r><a m='0'/><a m='1'/><a m='2'/></r>"
        )
        doc_id = scheme.store(document, "r").doc_id
        root = document.root_element

        def insert(index, marker):
            source = f"<a m='{marker}'/>"
            root_id = scheme.query_pres(doc_id, "/r")[0]
            insert_subtree(
                scheme, doc_id, root_id, parse_fragment(source),
                index=index,
            )
            root.insert_child(index, parse_fragment(source))

        def delete(index):
            victim = root.child_elements()[index]
            db_id = _db_id_of(scheme, doc_id, victim)
            delete_subtree(scheme, doc_id, db_id)
            root.remove_child(victim)

        insert(0, "front")
        insert(4, "back")
        delete(2)
        insert(2, "mid")
        delete(0)
        assert deep_equal(document, scheme.reconstruct(doc_id))
        markers = [
            node.get_attribute("m")
            for node in scheme.reconstruct(doc_id).root_element
            .child_elements()
        ]
        assert markers == ["0", "mid", "2", "back"]
