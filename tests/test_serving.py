"""Concurrent serving layer: thread safety, pools, sharding, scatter-gather."""

import os
import threading
import time

import pytest

from repro.errors import (
    DeadlineExceeded,
    DocumentNotFoundError,
    Overloaded,
    ReadOnlyDatabaseError,
    ShardError,
    StorageError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.relational.database import Database
from repro.relational.plancache import PlanCache
from repro.reliability.faults import ShardFaultPolicy
from repro.serve import ConnectionPool, ShardedStore
from repro.xml.parser import parse_document

from .conftest import BIB_XML

THREADS = 8


def hammer(worker, threads=THREADS):
    """Run *worker(thread_index)* on N threads; re-raise any failure."""
    errors = []
    barrier = threading.Barrier(threads)

    def run(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    pool = [
        threading.Thread(target=run, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


# -- thread-safe primitives ------------------------------------------------------


class TestThreadSafePrimitives:
    def test_metrics_hammer_loses_no_updates(self):
        registry = MetricsRegistry()
        per_thread = 10_000

        def worker(index):
            counter = registry.counter("hits")
            gauge = registry.gauge("level")
            histogram = registry.histogram("lat")
            for i in range(per_thread):
                counter.inc()
                gauge.add(1)
                histogram.observe(float(i % 7))

        hammer(worker)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == THREADS * per_thread
        assert snap["gauges"]["level"]["value"] == THREADS * per_thread
        assert snap["histograms"]["lat"]["count"] == THREADS * per_thread

    def test_plan_cache_hammer_stays_consistent(self):
        cache = PlanCache(capacity=32)
        per_thread = 2_000

        def worker(index):
            for i in range(per_thread):
                key = ("scheme", 0, f"//x[{i % 40}]")
                if cache.get(key) is None:
                    cache.put(key, f"plan-{index}-{i}")

        hammer(worker)
        stats = cache.stats()
        assert len(cache) <= 32
        assert stats["hits"] + stats["misses"] == THREADS * per_thread

    def test_tracer_spans_from_worker_threads(self):
        tracer = Tracer(enabled=True)

        def worker(index):
            for i in range(200):
                with tracer.span(f"work-{index}") as span:
                    span.set(iteration=i)
                    with tracer.span("inner"):
                        pass

        hammer(worker)
        # Every worker's spans land as their own roots; none are lost.
        assert len(tracer.finished) == THREADS * 200 * 2
        assert len(tracer.roots) == THREADS * 200


# -- read-only databases ---------------------------------------------------------


class TestReadOnlyDatabase:
    def test_reads_work_and_writes_are_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "ro.db")
        with Database(path, profile="durable") as writer:
            writer.execute("CREATE TABLE t (x INTEGER)")
            writer.execute("INSERT INTO t VALUES (41)")
        reader = Database(path, read_only=True)
        try:
            assert reader.scalar("SELECT x FROM t") == 41
            with pytest.raises(ReadOnlyDatabaseError):
                reader.execute("INSERT INTO t VALUES (42)")
            with pytest.raises(ReadOnlyDatabaseError):
                reader.executemany("UPDATE t SET x = ?", [(1,)])
        finally:
            reader.close()
        with Database(path) as writer:
            assert writer.scalar("SELECT count(*) FROM t") == 1

    def test_read_only_memory_database_is_rejected(self):
        with pytest.raises(StorageError):
            Database(":memory:", read_only=True)

    def test_reader_sees_writer_commits_under_wal(self, tmp_path):
        path = os.path.join(tmp_path, "wal.db")
        writer = Database(path, profile="durable")
        writer.execute("CREATE TABLE t (x INTEGER)")
        reader = Database(path, read_only=True)
        try:
            writer.execute("INSERT INTO t VALUES (1)")
            assert reader.scalar("SELECT count(*) FROM t") == 1
        finally:
            reader.close()
            writer.close()


# -- connection pools ------------------------------------------------------------


def make_shard_file(tmp_path, name="shard.db", docs=2):
    path = os.path.join(tmp_path, name)
    with Database(path, profile="durable") as db:
        from repro.core.registry import create_scheme

        scheme = create_scheme("interval", db)
        for i in range(docs):
            scheme.store(parse_document(BIB_XML), f"doc-{i}")
    return path


class TestConnectionPool:
    def test_acquire_release_reuses_connections(self, tmp_path):
        path = make_shard_file(tmp_path)
        metrics = MetricsRegistry()
        with ConnectionPool(path, "interval", size=2, metrics=metrics,
                            name="p") as pool:
            with pool.connection() as session:
                assert session.scheme.query_pres(1, "//book")
            with pool.connection():
                pass
            assert pool.stats()["open"] == 1  # LIFO reuse, no second build
            snap = metrics.snapshot()
            assert snap["counters"]["pool.p.acquires"] == 2
            assert snap["counters"]["pool.p.releases"] == 2
            assert snap["gauges"]["pool.p.in_use"]["value"] == 0

    def test_pool_connections_share_one_plan_cache(self, tmp_path):
        path = make_shard_file(tmp_path)
        with ConnectionPool(path, "interval", size=2) as pool:
            a = pool.acquire()
            b = pool.acquire()
            try:
                assert a.db is not b.db
                assert a.db.plan_cache is pool.plan_cache
                assert b.db.plan_cache is pool.plan_cache
            finally:
                pool.release(a)
                pool.release(b)

    def test_exhausted_pool_raises_overloaded(self, tmp_path):
        path = make_shard_file(tmp_path)
        metrics = MetricsRegistry()
        with ConnectionPool(path, "interval", size=1,
                            acquire_timeout=0.05, metrics=metrics,
                            name="p") as pool:
            session = pool.acquire()
            try:
                started = time.monotonic()
                with pytest.raises(Overloaded):
                    pool.acquire()
                assert time.monotonic() - started < 1.0
            finally:
                pool.release(session)
            assert metrics.snapshot()["counters"]["pool.p.timeouts"] == 1
            pool.acquire()  # released connection is available again

    def test_fresh_connection_health_failure_is_shard_down(self, tmp_path):
        path = make_shard_file(tmp_path)
        policy = ShardFaultPolicy()
        policy.fail_shard(0)
        metrics = MetricsRegistry()
        with ConnectionPool(path, "interval", size=2, metrics=metrics,
                            name="p",
                            database_factory=policy.factory(0)) as pool:
            with pytest.raises(StorageError, match="shard down"):
                pool.acquire()
            snap = metrics.snapshot()
            assert snap["counters"]["pool.p.health_failures"] == 1

    def test_stale_connection_is_discarded_and_rebuilt(self, tmp_path):
        path = make_shard_file(tmp_path)
        policy = ShardFaultPolicy()
        with ConnectionPool(path, "interval", size=2,
                            database_factory=policy.factory(0)) as pool:
            with pool.connection():
                pass  # one healthy idle connection
            policy.fail_shard(0)
            with pytest.raises(StorageError):
                pool.acquire()  # stale discarded, fresh rebuild also fails
            policy.heal_all()
            with pool.connection() as session:
                assert session.db.scalar("SELECT 1") == 1

    def test_concurrent_acquires_stay_within_bound(self, tmp_path):
        path = make_shard_file(tmp_path)
        with ConnectionPool(path, "interval", size=3,
                            acquire_timeout=5.0) as pool:

            def worker(index):
                for _ in range(20):
                    with pool.connection() as session:
                        assert session.db.scalar("SELECT 1") == 1

            hammer(worker)
            assert pool.stats()["open"] <= 3

    def test_release_racing_close_never_leaks_a_connection(self, tmp_path):
        # Regression for a window the concurrency audit surfaced:
        # release() checks _closed, then close() flips the flag and
        # drains the idle queue, then release() puts the session back —
        # leaving an open connection idling in a closed pool forever.
        # Reproduce the interleaving deterministically by closing the
        # pool from inside release's staleness check.
        path = make_shard_file(tmp_path)
        pool = ConnectionPool(path, "interval", size=1)
        session = pool.acquire()
        real_stale = pool._stale

        def stale_then_close(candidate):
            verdict = real_stale(candidate)
            pool.close()  # lands between release's check and its put
            return verdict

        pool._stale = stale_then_close
        pool.release(session)
        assert pool.stats()["idle"] == 0
        assert pool.stats()["open"] == 0
        with pytest.raises(StorageError):
            pool.acquire()


# -- sharded stores --------------------------------------------------------------


SMALL_XML = "<bib><book year='{y}'><title>T{y}</title></book></bib>"


def open_sharded_store(tmp_path, **kwargs):
    kwargs.setdefault("scheme", "interval")
    kwargs.setdefault("shards", 3)
    return ShardedStore.open(os.path.join(tmp_path, "store.d"), **kwargs)


class TestShardedStore:
    def test_roundtrip_and_routing(self, tmp_path):
        with open_sharded_store(tmp_path) as store:
            ids = [
                store.store_text(SMALL_XML.format(y=2000 + i), f"doc-{i}")
                for i in range(9)
            ]
            assert ids == list(range(1, 10))  # dense global ids
            assert sum(store.shard_counts().values()) == 9
            for i, doc_id in enumerate(ids):
                record = store.resolve(doc_id)
                assert store.query_xml(doc_id, "/bib/book/title") == [
                    f"<title>T{2000 + i}</title>"
                ]
                assert record.shard < 3

    def test_round_robin_placement_is_even(self, tmp_path):
        with open_sharded_store(tmp_path, placement="round_robin") as store:
            for i in range(9):
                store.store_text(SMALL_XML.format(y=i), f"d{i}")
            assert store.shard_counts() == {0: 3, 1: 3, 2: 3}

    def test_hash_placement_is_stable_across_reopen(self, tmp_path):
        with open_sharded_store(tmp_path) as store:
            ids = [
                store.store_text(SMALL_XML.format(y=i), f"d{i}")
                for i in range(6)
            ]
            before = {i: store.resolve(i).shard for i in ids}
        with open_sharded_store(tmp_path) as store:
            after = {i: store.resolve(i).shard for i in ids}
            assert after == before
            # placement function still agrees with the persisted map
            for record in store.documents():
                assert store.place(record.name) == record.shard

    def test_store_many_partitions_batches(self, tmp_path):
        with open_sharded_store(tmp_path, placement="round_robin") as store:
            docs = [parse_document(SMALL_XML.format(y=i)) for i in range(7)]
            ids = store.store_many(docs, names=[f"n{i}" for i in range(7)])
            assert ids == list(range(1, 8))
            assert store.shard_counts() == {0: 3, 1: 2, 2: 2}
            result = store.query_all("//book")
            assert result.doc_ids() == ids

    def test_delete_frees_the_owning_shard(self, tmp_path):
        with open_sharded_store(tmp_path) as store:
            doc = store.store_text(SMALL_XML.format(y=1), "a")
            keep = store.store_text(SMALL_XML.format(y=2), "b")
            store.delete(doc)
            with pytest.raises(DocumentNotFoundError):
                store.resolve(doc)
            assert store.query_all("//book").doc_ids() == [keep]

    def test_reopen_with_different_config_is_rejected(self, tmp_path):
        with open_sharded_store(tmp_path, shards=3):
            pass
        with pytest.raises(StorageError, match="config mismatch"):
            open_sharded_store(tmp_path, shards=4)
        with pytest.raises(StorageError, match="config mismatch"):
            open_sharded_store(tmp_path, scheme="edge")

    def test_reconstruct_matches_input(self, tmp_path):
        with open_sharded_store(tmp_path, scheme="dewey") as store:
            doc_id = store.store_text(BIB_XML, "bib")
            from repro.xml.dom import deep_equal

            assert deep_equal(
                store.reconstruct(doc_id), parse_document(BIB_XML)
            )


# -- scatter-gather --------------------------------------------------------------


def open_rr(tmp_path, docs=6, **kwargs):
    """Round-robin store with *docs* documents on known shards."""
    store = open_sharded_store(
        tmp_path, placement="round_robin", **kwargs
    )
    ids = [
        store.store_text(SMALL_XML.format(y=i), f"d{i}") for i in range(docs)
    ]
    return store, ids


class TestScatterGather:
    def test_doc_scoped_query_touches_exactly_one_shard(self, tmp_path):
        store, ids = open_rr(tmp_path)
        with store:
            metrics = store.metrics
            # warm nothing; query doc on shard 1 (round robin: d1)
            target = ids[1]
            assert store.resolve(target).shard == 1
            pres = store.query_pres(target, "//title")
            assert len(pres) == 1
            snap = metrics.snapshot()
            assert snap["counters"]["serve.doc_scoped_queries"] == 1
            assert snap["counters"].get("pool.shard1.acquires", 0) == 1
            assert "pool.shard0.acquires" not in snap["counters"]
            assert "pool.shard2.acquires" not in snap["counters"]

    def test_scatter_merges_in_doc_then_document_order(self, tmp_path):
        store, ids = open_rr(tmp_path)
        with store:
            result = store.query_all("//book | //title")
            assert result.shards_queried == 3
            assert list(result.rows) == sorted(result.rows)
            assert result.doc_ids() == ids  # global id order
            # every doc contributes its two nodes in pre order
            for doc_id in ids:
                pres = [pre for d, pre in result.rows if d == doc_id]
                assert pres == sorted(pres)

    def test_empty_shard_contributes_nothing(self, tmp_path):
        with open_sharded_store(tmp_path, placement="round_robin") as store:
            a = store.store_text(SMALL_XML.format(y=1), "a")  # shard 0
            b = store.store_text(SMALL_XML.format(y=2), "b")  # shard 1
            # shard 2 has no documents
            result = store.query_all("//book")
            assert result.shards_queried == 3
            assert result.doc_ids() == [a, b]
            assert not result.partial

    def test_faulted_shard_partial_mode_flags_and_survives(self, tmp_path):
        policy = ShardFaultPolicy()
        store, ids = open_rr(
            tmp_path, on_shard_error="partial", fault_policy=policy
        )
        with store:
            policy.fail_shard(1)
            result = store.query_all("//book")
            assert result.partial
            assert [shard for shard, _ in result.failed_shards] == [1]
            survivors = {store.resolve(d).shard for d in result.doc_ids()}
            assert survivors == {0, 2}
            policy.heal_all()
            healed = store.query_all("//book")
            assert not healed.partial
            assert healed.doc_ids() == ids

    def test_faulted_shard_fail_mode_raises_shard_error(self, tmp_path):
        policy = ShardFaultPolicy()
        store, _ = open_rr(
            tmp_path, on_shard_error="fail", fault_policy=policy
        )
        with store:
            policy.fail_shard(2)
            with pytest.raises(ShardError) as excinfo:
                store.query_all("//book")
            assert excinfo.value.shard == 2

    def test_deadline_exceeded_mid_fanout(self, tmp_path):
        policy = ShardFaultPolicy()
        store, _ = open_rr(tmp_path, fault_policy=policy)
        with store:
            store.query_all("//book")  # warm every pool
            policy.stall_shard(1, 0.5)
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded) as excinfo:
                store.query_all("//book", deadline=0.1)
            assert time.monotonic() - started < 0.45  # did not wait out the stall
            assert excinfo.value.deadline_seconds == pytest.approx(0.1)
            snap = store.metrics.snapshot()
            assert snap["counters"]["serve.deadline_exceeded"] >= 1

    def test_doc_scoped_deadline_also_raises(self, tmp_path):
        policy = ShardFaultPolicy()
        store, ids = open_rr(tmp_path, fault_policy=policy)
        with store:
            store.query_pres(ids[0], "//book")  # warm shard 0's pool
            policy.stall_shard(0, 0.4)
            with pytest.raises(DeadlineExceeded):
                store.query_pres(ids[0], "//book", deadline=0.05)

    def test_overloaded_when_in_flight_limit_hit(self, tmp_path):
        policy = ShardFaultPolicy()
        store, ids = open_rr(tmp_path, max_in_flight=1, fault_policy=policy)
        with store:
            store.query_pres(ids[0], "//book")  # warm shard 0's pool
            policy.stall_shard(0, 0.8)
            background_error = []

            def slow_query():
                try:
                    store.query_pres(ids[0], "//book")
                except Exception as error:  # noqa: BLE001
                    background_error.append(error)

            thread = threading.Thread(target=slow_query)
            thread.start()
            try:
                deadline = time.monotonic() + 2.0
                while time.monotonic() < deadline:
                    if store.metrics.gauge("serve.in_flight").value == 1:
                        break
                    time.sleep(0.005)
                else:
                    pytest.fail("background query never became in-flight")
                with pytest.raises(Overloaded):
                    store.query_pres(ids[1], "//book")
                snap = store.metrics.snapshot()
                assert snap["counters"]["serve.overloaded"] == 1
            finally:
                thread.join()
            assert not background_error

    def test_concurrent_readers_get_consistent_answers(self, tmp_path):
        store, ids = open_rr(tmp_path, docs=6, pool_size=2)
        with store:
            expected = store.query_all("//title").rows

            def worker(index):
                for _ in range(10):
                    doc = ids[index % len(ids)]
                    assert len(store.query_pres(doc, "//title")) == 1
                    assert store.query_all("//title").rows == expected

            hammer(worker)
            snap = store.metrics.snapshot()
            assert snap["gauges"]["serve.in_flight"]["value"] == 0
            for shard in range(3):
                gauge = snap["gauges"].get(f"pool.shard{shard}.in_use")
                assert gauge is None or gauge["value"] == 0

    def test_writes_visible_to_subsequent_scatter(self, tmp_path):
        store, ids = open_rr(tmp_path, docs=3)
        with store:
            assert len(store.query_all("//book").rows) == 3
            new = store.store_text(SMALL_XML.format(y=99), "late")
            result = store.query_all("//book")
            assert new in result.doc_ids()
            assert len(result.rows) == 4
