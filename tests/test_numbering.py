"""Unit tests for node numbering (pre/post/size/level/dewey)."""

import pytest

from repro.errors import StorageError
from repro.xml import parse_document
from repro.xml.dom import NodeKind
from repro.storage.numbering import (
    DEWEY_SEPARATOR,
    build_document,
    build_subtree,
    dewey_component,
    dewey_depth,
    dewey_is_ancestor,
    dewey_parent,
    number_document,
)

SRC = '<r a="1"><x><y>t</y></x><z b="2"/><!--c--></r>'


@pytest.fixture()
def records():
    return number_document(parse_document(SRC))


def by_name(records, name):
    return next(r for r in records if r.name == name)


class TestNumbering:
    def test_pre_matches_document_order(self, records):
        assert [r.pre for r in records] == list(range(1, len(records) + 1))

    def test_every_stored_node_present(self, records):
        doc = parse_document(SRC)
        doc.assign_order()
        kinds = [r.kind for r in records]
        assert kinds.count(int(NodeKind.ELEMENT)) == 4
        assert kinds.count(int(NodeKind.ATTRIBUTE)) == 2
        assert kinds.count(int(NodeKind.TEXT)) == 1
        assert kinds.count(int(NodeKind.COMMENT)) == 1

    def test_size_counts_subtree(self, records):
        root = by_name(records, "r")
        assert root.size == len(records) - 1
        x = by_name(records, "x")
        assert x.size == 2  # y and its text

    def test_descendant_window(self, records):
        x = by_name(records, "x")
        inside = [
            r.pre for r in records if x.pre < r.pre <= x.pre + x.size
        ]
        names = {r.name for r in records if r.pre in inside}
        assert "y" in names

    def test_post_order(self, records):
        # A parent's post number is larger than all its descendants'.
        x = by_name(records, "x")
        y = by_name(records, "y")
        assert x.post > y.post

    def test_levels(self, records):
        assert by_name(records, "r").level == 1
        assert by_name(records, "a").level == 2  # attribute of root
        assert by_name(records, "y").level == 3

    def test_parent_links(self, records):
        root = by_name(records, "r")
        assert root.parent_pre == 0
        assert by_name(records, "x").parent_pre == root.pre

    def test_ordinals_attributes_first(self, records):
        root = by_name(records, "r")
        a = by_name(records, "a")
        x = by_name(records, "x")
        assert a.ordinal == 1          # attribute occupies the first slot
        assert x.ordinal == 2

    def test_dewey_labels(self, records):
        root = by_name(records, "r")
        y = by_name(records, "y")
        assert root.dewey == dewey_component(1)
        assert y.dewey.startswith(root.dewey + DEWEY_SEPARATOR)
        assert dewey_depth(y.dewey) == 3

    def test_dewey_lexicographic_is_document_order(self, records):
        labels = [r.dewey for r in records]
        assert labels == sorted(labels)

    def test_dewey_prefix_is_ancestor(self, records):
        root = by_name(records, "r")
        for record in records:
            if record.pre == root.pre:
                continue
            assert dewey_is_ancestor(root.dewey, record.dewey)

    def test_multiple_root_level_nodes(self):
        records = number_document(parse_document("<!--before--><r/>"))
        assert [r.kind for r in records] == [
            int(NodeKind.COMMENT), int(NodeKind.ELEMENT),
        ]
        assert records[0].ordinal == 1
        assert records[1].ordinal == 2


class TestDeweyHelpers:
    def test_component_padding(self):
        assert dewey_component(7) == "000007"

    def test_component_bounds(self):
        with pytest.raises(StorageError):
            dewey_component(0)
        with pytest.raises(StorageError):
            dewey_component(10 ** 7)

    def test_parent(self):
        assert dewey_parent("000001.000002") == "000001"
        assert dewey_parent("000001") is None

    def test_is_ancestor_is_proper(self):
        assert not dewey_is_ancestor("000001", "000001")
        assert not dewey_is_ancestor("000001", "000010")  # not a prefix


class TestRebuild:
    def test_build_document_roundtrip(self):
        from repro.xml.dom import deep_equal

        doc = parse_document(SRC)
        rebuilt = build_document(number_document(doc))
        assert deep_equal(doc, rebuilt)

    def test_build_subtree(self):
        doc = parse_document(SRC)
        records = number_document(doc)
        x = by_name(records, "x")
        subtree_records = [
            r for r in records if x.pre <= r.pre <= x.pre + x.size
        ]
        node = build_subtree(subtree_records)
        assert node.tag == "x"
        assert node.find("y").text == "t"

    def test_build_empty_rejected(self):
        with pytest.raises(StorageError, match="empty record set"):
            build_subtree([])

    def test_build_missing_parent_rejected(self):
        doc = parse_document(SRC)
        records = number_document(doc)
        # Drop an intermediate node: its child's parent is missing.
        broken = [r for r in records if r.name != "y"]
        with pytest.raises(StorageError, match="missing parent"):
            build_document(broken)
