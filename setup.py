"""Setup shim for environments without the `wheel` package (offline CI).

The canonical metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`pip install -e .`) used by such environments.
"""

from setuptools import setup

setup()
