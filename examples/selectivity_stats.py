"""Optimizer statistics: build a path summary, estimate query
cardinalities, and check the estimates against real result sizes.

Run:  python examples/selectivity_stats.py
"""

from repro.stats import build_summary, estimate_cardinality
from repro.workloads import generate_auction
from repro.xpath import evaluate_nodes


QUERIES = [
    "/site/people/person",
    "//bidder",
    "//item/name",
    "/site/regions/africa/item/description",
    "/site/open_auctions/open_auction[initial > 50]",
    "/site/open_auctions/open_auction[initial > 150]",
    "/site/people/person[address]",
    "/site/people/person[address/city = 'Berlin']/name",
    "//item[contains(description, 'vintage')]",
]


def main() -> None:
    document = generate_auction(scale_factor=0.2, seed=11)
    summary = build_summary(document)
    print(
        f"path summary: {summary.path_count} distinct paths over "
        f"{summary.total_nodes} nodes "
        f"({100 * summary.path_count / summary.total_nodes:.1f}% of the "
        "data — why exhaustive path statistics are affordable)"
    )

    print("\n-- a few per-path statistics --")
    for path in (
        ("site", "people", "person"),
        ("site", "open_auctions", "open_auction", "initial"),
    ):
        statistics = summary.get(path)
        print(
            f"  /{'/'.join(path)}: count={statistics.count}, "
            f"distinct values={statistics.distinct_values}, "
            f"numeric range=[{statistics.numeric_min}, "
            f"{statistics.numeric_max}]"
        )

    print(f"\n{'query':58s} {'actual':>6s} {'estimate':>9s} {'q-err':>6s}")
    for query in QUERIES:
        actual = len(evaluate_nodes(document, query))
        estimate = estimate_cardinality(summary, query)
        if actual and estimate:
            q_error = max(actual / estimate, estimate / actual)
        else:
            q_error = 1.0 if actual == estimate else float("inf")
        print(f"{query:58s} {actual:6d} {estimate:9.1f} {q_error:6.2f}")

    print(
        "\nstructure-only estimates are exact (the summary enumerates "
        "every occurring path);\npredicates use uniform-range and "
        "distinct-value models; contains() is the classic 10% guess."
    )


if __name__ == "__main__":
    main()
