"""Document archive: a persistent (file-backed) bibliography store with
point lookups, FLWOR-style queries, and in-place updates.

Run:  python examples/document_archive.py
"""

import os
import tempfile

from repro import XmlRelStore, serialize
from repro.query.flwor import compile_flwor, run_flwor
from repro.updates import delete_subtree, insert_subtree
from repro.workloads import generate_dblp
from repro.xml import parse_fragment


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(prefix="xmlrel-"), "archive.db")
    document = generate_dblp(record_count=1000, seed=7)

    # The dewey scheme: order labels make updates cheap (experiment E7).
    with XmlRelStore.open(path, scheme="dewey") as store:
        doc_id = store.store(document, "dblp-2003")
        print(f"archive at {path}")
        print(f"stored {store.documents()[0].node_count} nodes")

        print("\n-- point lookup by key (value-index driven) --")
        for xml in store.query_xml(
            doc_id, "/dblp/article[@key = 'article/8']/title"
        ):
            print("  ", xml)

        print("\n-- FLWOR-lite: VLDB papers --")
        flwor = (
            "for $p in /dblp/inproceedings "
            "where $p/booktitle = 'VLDB' and $p/year > 1999 "
            "return $p/title"
        )
        print("   query   :", flwor)
        print("   compiles:", compile_flwor(flwor).xpath)
        titles = run_flwor(store, doc_id, flwor)
        for node in titles[:5]:
            print("  ", node.string_value)
        print(f"   ... {len(titles)} results")

        print("\n-- insert a new record, then find it --")
        new_record = parse_fragment(
            "<article key='article/new'>"
            "<author>New Author</author>"
            "<title>A Fresh Look At Shredding.</title>"
            "<year>2003</year><journal>VLDB Journal</journal>"
            "</article>"
        )
        root_pre = store.query_pres(doc_id, "/dblp")[0]
        stats = insert_subtree(
            store.scheme, doc_id, root_pre, new_record, index=0
        )
        print(f"   inserted {stats.rows_inserted} rows, "
              f"relabelled {stats.rows_updated}")
        found = store.query(doc_id, "/dblp/article[@key = 'article/new']")
        print("  ", serialize(found[0])[:70] + "...")

        print("\n-- and delete it again --")
        new_pre = store.query_pres(
            doc_id, "/dblp/article[@key = 'article/new']"
        )[0]
        stats = delete_subtree(store.scheme, doc_id, new_pre)
        print(f"   deleted {stats.rows_deleted} rows")

    # Reopen the file: everything is durable.
    with XmlRelStore.open(path, scheme="dewey") as store:
        print("\n-- reopened the archive --")
        record = store.documents()[0]
        print(f"   {record.name}: {record.node_count} nodes, "
              f"scheme={record.scheme}")
        count = len(store.query_pres(record.doc_id, "//author"))
        print(f"   {count} author elements")


if __name__ == "__main__":
    main()
