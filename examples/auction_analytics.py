"""Auction analytics: run one XMark-style workload through *every*
storage scheme side by side and compare storage, coverage, and latency —
the tutorial's central comparison, as a script.

Run:  python examples/auction_analytics.py
"""

from repro import compare_schemes
from repro.workloads import AUCTION_QUERIES, auction_dtd, generate_auction


def main() -> None:
    document = generate_auction(scale_factor=0.1, seed=42)
    document.assign_order()
    print(f"generated auction document: {document.assign_order()} nodes")

    queries = [spec.xpath for spec in AUCTION_QUERIES]
    results = compare_schemes(
        document,
        queries,
        scheme_kwargs={"inlining": {"dtd": auction_dtd()}},
        repetitions=3,
    )

    print(f"\n{'scheme':10s} {'store ms':>9s} {'bytes':>9s} "
          f"{'tables':>6s} {'rows':>7s} {'queries':>8s}")
    for name, comparison in results.items():
        print(
            f"{name:10s} {comparison.store_seconds * 1000:9.1f} "
            f"{comparison.storage_bytes:9d} {comparison.table_count:6d} "
            f"{comparison.total_rows:7d} "
            f"{comparison.supported_queries():5d}/{len(queries)}"
        )

    print("\nper-query latency (ms; '—' = not translatable):")
    names = list(results)
    header = "  ".join(f"{name[:9]:>9s}" for name in names)
    print(f"{'query':18s} {header}")
    for spec in AUCTION_QUERIES:
        cells = []
        for name in names:
            outcome = results[name].outcomes[spec.xpath]
            cells.append(
                f"{outcome.seconds * 1000:9.2f}" if outcome.supported
                else f"{'—':>9s}"
            )
        print(f"{spec.key:4s} {spec.category:13s} " + "  ".join(cells))

    print("\nunsupported queries, by scheme:")
    for name in names:
        missing = [
            spec.key for spec in AUCTION_QUERIES
            if not results[name].outcomes[spec.xpath].supported
        ]
        if missing:
            print(f"  {name:10s} {', '.join(missing)}")
    print("\n(all supported answers were verified to agree across schemes)")


if __name__ == "__main__":
    main()
