"""Schema-aware storage: DTD inlining strategies side by side.

Shows the inlining algorithm (Shanmugasundaram et al., VLDB 1999) at
work: how basic/shared/hybrid decide which elements get relations, the
generated relational schema, and how queries over inlined elements need
fewer joins than schema-oblivious mappings.

Run:  python examples/schema_aware.py
"""

from repro import XmlRelStore
from repro.storage.inlining import build_mapping
from repro.workloads import auction_dtd, generate_auction
from repro.xml.serialize import serialize


def main() -> None:
    dtd = auction_dtd()

    print("-- inlining strategies on the auction DTD --")
    print(f"{'strategy':8s} {'relations':>9s} {'columns':>8s}")
    for strategy in ("basic", "shared", "hybrid"):
        mapping = build_mapping(dtd, strategy)
        print(f"{strategy:8s} {mapping.relation_count:9d} "
              f"{mapping.total_columns:8d}")

    shared = build_mapping(dtd, "shared")
    print("\n-- relations under shared inlining --")
    for element, relation in sorted(shared.relations.items()):
        inlined = [
            p.element for p in relation.positions.values() if not p.is_root
        ]
        suffix = f"  (inlines: {', '.join(inlined)})" if inlined else ""
        print(f"  {relation.table.name:28s} <- {element}{suffix}")

    print("\n-- one generated CREATE TABLE --")
    print(shared.relations["person"].table.ddl())

    print("\n-- store a document and query it --")
    document = generate_auction(scale_factor=0.05, seed=42)
    with XmlRelStore.open(scheme="inlining", dtd=auction_dtd()) as store:
        doc_id = store.store(document, "auction")
        print(f"stored into {len(store.table_names())} tables")

        query = "/site/people/person[address/city = 'Berlin']/name"
        sql, params = store.sql_for(doc_id, query)
        print(f"\nquery: {query}")
        print("generated SQL (note: name/address/city cost no join "
              "where the DTD inlines them):")
        print(sql)
        for node in store.query(doc_id, query):
            print("  ->", serialize(node))

        # Compare join counts with a schema-oblivious mapping.
        with XmlRelStore.open(scheme="interval") as oblivious:
            other_id = oblivious.store(document, "auction")
            inline_joins = store.scheme.translator().join_count(
                doc_id, "/site/people/person/address/city"
            )
            interval_joins = oblivious.scheme.translator().join_count(
                other_id, "/site/people/person/address/city"
            )
        print(f"\njoins for /site/people/person/address/city: "
              f"inlining={inline_joins}, interval={interval_joins}")


if __name__ == "__main__":
    main()
