"""Quickstart: store an XML document in a relational database, query it
with XPath, inspect the generated SQL, and get your document back.

Run:  python examples/quickstart.py
"""

from repro import XmlRelStore

BIB = """\
<bib>
  <book year="1994" id="b1">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000" id="b2">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <publisher>Morgan Kaufmann</publisher>
    <price>39.95</price>
  </book>
</bib>
"""


def main() -> None:
    # Open an in-memory store using the interval (pre/post) mapping —
    # the all-round default.  Other schemes: edge, binary, universal,
    # dewey, xrel, inlining.
    with XmlRelStore.open(scheme="interval") as store:
        doc_id = store.store_text(BIB, name="bibliography")
        print(f"stored document #{doc_id} "
              f"({store.documents()[0].node_count} nodes) "
              f"in tables: {store.table_names()}")

        print("\n-- titles of books over $50 --")
        for xml in store.query_xml(doc_id, "/bib/book[price > 50]/title"):
            print("  ", xml)

        print("\n-- authors anywhere (descendant axis) --")
        for node in store.query(doc_id, "//author/last"):
            print("  ", node.string_value)

        print("\n-- the SQL behind the predicate query --")
        sql, params = store.sql_for(doc_id, "/bib/book[price > 50]/title")
        print(sql)
        print("parameters:", params)

        print("\n-- full document reconstructed from rows --")
        print(store.reconstruct_xml(doc_id)[:120] + "...")


if __name__ == "__main__":
    main()
